// AdapterServer contract tests: batched execution must be bit-identical to
// one-at-a-time forwards for every MetaLoRA adapter kind, backpressure must
// bound the queue without losing accepted requests, and shutdown must drain
// every in-flight request. The threaded tests double as TSan coverage (this
// binary runs under the thread-sanitizer CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "autograd/runtime_context.h"
#include "autograd/variable.h"
#include "common/bounded_queue.h"
#include "common/rng.h"
#include "core/lotr_adapter.h"
#include "core/metalora_conv.h"
#include "core/metalora_linear.h"
#include "core/precision_shadows.h"
#include "core/tt_adapter.h"
#include "eval/batch_assembly.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "serve/adapter_server.h"
#include "tensor/autocast.h"
#include "tensor/lowp.h"
#include "tensor/random_init.h"

namespace metalora {
namespace serve {
namespace {

using autograd::Variable;
using core::AdapterKind;
using core::AdapterOptions;

constexpr int64_t kFeatDim = 10;
constexpr int64_t kLinearIn = 5;

AdapterOptions MetaOpts(AdapterKind kind) {
  AdapterOptions o;
  o.kind = kind;
  o.rank = 3;
  o.alpha = 3.0f;
  o.feature_dim = kFeatDim;
  o.mapping_hidden = 8;
  o.seed = 11;
  return o;
}

std::unique_ptr<nn::Linear> BaseLinear() {
  Rng rng(2);
  return std::make_unique<nn::Linear>(kLinearIn, 4, true, rng);
}

std::unique_ptr<nn::Conv2d> BaseConv() {
  Rng rng(2);
  return std::make_unique<nn::Conv2d>(2, 4, 3, 1, 1, false, rng);
}

void RandomizeFactors(nn::Module& m, uint64_t seed) {
  Rng rng(seed);
  for (auto& np : m.NamedParameters()) {
    if (np.name == "lora_b" || np.name == "core_b") {
      FillNormal(np.variable->mutable_value(), rng, 0.0f, 0.5f);
    }
  }
}

Tensor RandFeatures(int64_t n, uint64_t seed) {
  Rng rng(seed);
  return RandomUniform(Shape{n, kFeatDim}, rng, -1.0f, 1.0f);
}

Tensor RandLinearInput(int64_t n, uint64_t seed) {
  Rng rng(seed);
  return RandomUniform(Shape{n, kLinearIn}, rng, -1.0f, 1.0f);
}

Tensor RandConvInput(int64_t n, uint64_t seed) {
  Rng rng(seed);
  return RandomUniform(Shape{n, 2, 5, 5}, rng, -1.0f, 1.0f);
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.defined());
  ASSERT_TRUE(b.defined());
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.numel())),
            0);
}

/// One-at-a-time reference: SetFeatures + Forward per request in no-grad
/// mode, on a *separate but identically constructed* adapter instance.
Tensor SerialForward(core::Adapter& adapter, const Tensor& features,
                     const Tensor& x) {
  autograd::NoGradGuard ng;
  adapter.SetFeatures(Variable(features, /*requires_grad=*/false));
  return adapter.Forward(Variable(x, /*requires_grad=*/false)).value();
}

TEST(BatchAssembly, ConcatSplitRoundTrip) {
  std::vector<Tensor> parts = {RandLinearInput(1, 1), RandLinearInput(3, 2),
                               RandLinearInput(2, 3)};
  Tensor batch = eval::ConcatRows(parts);
  EXPECT_EQ(batch.dim(0), 6);
  std::vector<Tensor> back = eval::SplitRows(batch, {1, 3, 2});
  ASSERT_EQ(back.size(), parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    ExpectBitIdentical(parts[i], back[i]);
  }
}

TEST(BatchAssembly, ConcatSplitRoundTrip4d) {
  std::vector<Tensor> parts = {RandConvInput(2, 4), RandConvInput(1, 5)};
  Tensor batch = eval::ConcatRows(parts);
  EXPECT_EQ(batch.dim(0), 3);
  EXPECT_EQ(batch.rank(), 4);
  std::vector<Tensor> back = eval::SplitRows(batch, {2, 1});
  for (size_t i = 0; i < parts.size(); ++i) {
    ExpectBitIdentical(parts[i], back[i]);
  }
}

// Every adapter kind, 8 client threads, batched results must be
// byte-identical to one-at-a-time forwards on a twin adapter.
TEST(AdapterServer, BatchedMatchesSerialBitIdentical) {
  // Served instances.
  core::MetaLoraCpLinear cp_lin(BaseLinear(), MetaOpts(AdapterKind::kMetaLoraCp));
  core::MetaLoraTrLinear tr_lin(BaseLinear(), MetaOpts(AdapterKind::kMetaLoraTr));
  core::MetaLoraCpConv cp_conv(BaseConv(), MetaOpts(AdapterKind::kMetaLoraCp));
  core::MetaLoraTrConv tr_conv(BaseConv(), MetaOpts(AdapterKind::kMetaLoraTr));
  // Twin instances for the serial reference (identical construction).
  core::MetaLoraCpLinear cp_lin_ref(BaseLinear(),
                                    MetaOpts(AdapterKind::kMetaLoraCp));
  core::MetaLoraTrLinear tr_lin_ref(BaseLinear(),
                                    MetaOpts(AdapterKind::kMetaLoraTr));
  core::MetaLoraCpConv cp_conv_ref(BaseConv(),
                                   MetaOpts(AdapterKind::kMetaLoraCp));
  core::MetaLoraTrConv tr_conv_ref(BaseConv(),
                                   MetaOpts(AdapterKind::kMetaLoraTr));
  for (auto* m : std::initializer_list<nn::Module*>{&cp_lin, &cp_lin_ref}) {
    RandomizeFactors(*m, 21);
  }
  for (auto* m : std::initializer_list<nn::Module*>{&tr_lin, &tr_lin_ref}) {
    RandomizeFactors(*m, 22);
  }
  for (auto* m : std::initializer_list<nn::Module*>{&cp_conv, &cp_conv_ref}) {
    RandomizeFactors(*m, 23);
  }
  for (auto* m : std::initializer_list<nn::Module*>{&tr_conv, &tr_conv_ref}) {
    RandomizeFactors(*m, 24);
  }

  AdapterServerOptions opts;
  opts.max_batch_size = 4;
  opts.flush_deadline_us = 500;
  opts.num_workers = 3;
  AdapterServer server(opts);
  const int cp_lin_id =
      server.RegisterSession(&cp_lin, cp_lin.conditioning_cache());
  const int tr_lin_id =
      server.RegisterSession(&tr_lin, tr_lin.conditioning_cache());
  const int cp_conv_id =
      server.RegisterSession(&cp_conv, cp_conv.conditioning_cache());
  const int tr_conv_id =
      server.RegisterSession(&tr_conv, tr_conv.conditioning_cache());
  server.Start();

  struct Expected {
    std::future<Tensor> got;
    Tensor want;
  };
  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  std::vector<std::vector<Expected>> per_client(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const uint64_t seed = 1000 + static_cast<uint64_t>(c * kPerClient + i);
        const Tensor f = RandFeatures(1, seed);
        Expected e;
        switch (i % 4) {
          case 0:
            e.got = server.Submit(cp_lin_id, f, RandLinearInput(1, seed + 1));
            break;
          case 1:
            e.got = server.Submit(tr_lin_id, f, RandLinearInput(1, seed + 1));
            break;
          case 2:
            e.got = server.Submit(cp_conv_id, f, RandConvInput(1, seed + 1));
            break;
          default:
            e.got = server.Submit(tr_conv_id, f, RandConvInput(1, seed + 1));
            break;
        }
        per_client[static_cast<size_t>(c)].push_back(std::move(e));
      }
    });
  }
  for (auto& t : clients) t.join();

  // Serial references, computed after all submits so the server's batch
  // compositions are whatever the batcher coalesced.
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const uint64_t seed = 1000 + static_cast<uint64_t>(c * kPerClient + i);
      const Tensor f = RandFeatures(1, seed);
      Expected& e = per_client[static_cast<size_t>(c)][static_cast<size_t>(i)];
      switch (i % 4) {
        case 0:
          e.want = SerialForward(cp_lin_ref, f, RandLinearInput(1, seed + 1));
          break;
        case 1:
          e.want = SerialForward(tr_lin_ref, f, RandLinearInput(1, seed + 1));
          break;
        case 2:
          e.want = SerialForward(cp_conv_ref, f, RandConvInput(1, seed + 1));
          break;
        default:
          e.want = SerialForward(tr_conv_ref, f, RandConvInput(1, seed + 1));
          break;
      }
    }
  }

  for (auto& client : per_client) {
    for (Expected& e : client) {
      ExpectBitIdentical(e.got.get(), e.want);
    }
  }
  server.Shutdown();

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests_completed, kClients * kPerClient);
  EXPECT_EQ(stats.requests_rejected, 0);
  EXPECT_GT(stats.batches_executed, 0);
  EXPECT_EQ(stats.batched_rows, kClients * kPerClient);
}

/// LoTR starts with a zero core, TT with a zero output core; perturb them
/// so batched-vs-serial differences cannot hide behind ΔW = 0.
void RandomizeNewFamilyCores(nn::Module& m, uint64_t seed) {
  Rng rng(seed);
  for (auto& np : m.NamedParameters()) {
    if (np.name == "lotr_core" || np.name == "tt_out_b" ||
        np.name == "tt_out") {
      FillNormal(np.variable->mutable_value(), rng, 0.0f, 0.5f);
    }
  }
}

// Same contract for the shared-core and tensor-train families: batched
// results byte-identical to one-at-a-time forwards on twin instances. The
// meta variants exercise per-sample seeds through the batcher; the plain
// variants prove unconditioned adapters batch transparently too.
TEST(AdapterServer, NewFamiliesBatchedMatchesSerialBitIdentical) {
  core::LotrLinear lotr_lin(BaseLinear(), MetaOpts(AdapterKind::kMetaLotr));
  core::LotrConv lotr_conv(BaseConv(), MetaOpts(AdapterKind::kLotr));
  core::TtLinear tt_lin(BaseLinear(), MetaOpts(AdapterKind::kTt));
  core::TtConv tt_conv(BaseConv(), MetaOpts(AdapterKind::kMetaTt));
  core::LotrLinear lotr_lin_ref(BaseLinear(),
                                MetaOpts(AdapterKind::kMetaLotr));
  core::LotrConv lotr_conv_ref(BaseConv(), MetaOpts(AdapterKind::kLotr));
  core::TtLinear tt_lin_ref(BaseLinear(), MetaOpts(AdapterKind::kTt));
  core::TtConv tt_conv_ref(BaseConv(), MetaOpts(AdapterKind::kMetaTt));
  RandomizeNewFamilyCores(lotr_lin, 31);
  RandomizeNewFamilyCores(lotr_lin_ref, 31);
  RandomizeNewFamilyCores(lotr_conv, 32);
  RandomizeNewFamilyCores(lotr_conv_ref, 32);
  RandomizeNewFamilyCores(tt_lin, 33);
  RandomizeNewFamilyCores(tt_lin_ref, 33);
  RandomizeNewFamilyCores(tt_conv, 34);
  RandomizeNewFamilyCores(tt_conv_ref, 34);

  AdapterServerOptions opts;
  opts.max_batch_size = 4;
  opts.flush_deadline_us = 500;
  opts.num_workers = 3;
  AdapterServer server(opts);
  const int lotr_lin_id =
      server.RegisterSession(&lotr_lin, lotr_lin.conditioning_cache());
  const int lotr_conv_id =
      server.RegisterSession(&lotr_conv, lotr_conv.conditioning_cache());
  const int tt_lin_id =
      server.RegisterSession(&tt_lin, tt_lin.conditioning_cache());
  const int tt_conv_id =
      server.RegisterSession(&tt_conv, tt_conv.conditioning_cache());
  server.Start();

  struct Expected {
    std::future<Tensor> got;
    Tensor want;
  };
  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<std::vector<Expected>> per_client(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const uint64_t seed = 3000 + static_cast<uint64_t>(c * kPerClient + i);
        const Tensor f = RandFeatures(1, seed);
        Expected e;
        switch (i % 4) {
          case 0:
            e.got = server.Submit(lotr_lin_id, f, RandLinearInput(1, seed + 1));
            break;
          case 1:
            e.got = server.Submit(lotr_conv_id, f, RandConvInput(1, seed + 1));
            break;
          case 2:
            e.got = server.Submit(tt_lin_id, f, RandLinearInput(1, seed + 1));
            break;
          default:
            e.got = server.Submit(tt_conv_id, f, RandConvInput(1, seed + 1));
            break;
        }
        per_client[static_cast<size_t>(c)].push_back(std::move(e));
      }
    });
  }
  for (auto& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const uint64_t seed = 3000 + static_cast<uint64_t>(c * kPerClient + i);
      const Tensor f = RandFeatures(1, seed);
      Expected& e = per_client[static_cast<size_t>(c)][static_cast<size_t>(i)];
      switch (i % 4) {
        case 0:
          e.want = SerialForward(lotr_lin_ref, f, RandLinearInput(1, seed + 1));
          break;
        case 1:
          e.want = SerialForward(lotr_conv_ref, f, RandConvInput(1, seed + 1));
          break;
        case 2:
          e.want = SerialForward(tt_lin_ref, f, RandLinearInput(1, seed + 1));
          break;
        default:
          e.want = SerialForward(tt_conv_ref, f, RandConvInput(1, seed + 1));
          break;
      }
    }
  }

  for (auto& client : per_client) {
    for (Expected& e : client) {
      ExpectBitIdentical(e.got.get(), e.want);
    }
  }
  server.Shutdown();
  EXPECT_EQ(server.stats().requests_completed, kClients * kPerClient);
  EXPECT_EQ(server.stats().requests_failed, 0);
}

// The autocast option: a server running a low-precision tier must still be
// bit-identical to a one-at-a-time twin under the same policy (per-row
// scales / row-local rounding make batching invisible at every tier), and
// its ServeStats must attribute the worker GEMMs to that tier.
TEST(AdapterServer, AutocastTierMatchesOneAtATimeAndCountsDispatch) {
  for (OpPrecision prec : {OpPrecision::kBf16, OpPrecision::kInt8}) {
    SCOPED_TRACE(OpPrecisionName(prec));
    core::MetaLoraCpLinear served(BaseLinear(),
                                  MetaOpts(AdapterKind::kMetaLoraCp));
    core::MetaLoraCpLinear twin(BaseLinear(),
                                MetaOpts(AdapterKind::kMetaLoraCp));
    RandomizeFactors(served, 61);
    RandomizeFactors(twin, 61);
    served.SetTraining(false);
    twin.SetTraining(false);
    // Quantize-once-at-publish: both instances carry shadows so both take
    // the prepacked serving path.
    std::vector<lowp::ShadowHandle> served_shadows =
        core::RegisterModuleShadows(served);
    std::vector<lowp::ShadowHandle> twin_shadows =
        core::RegisterModuleShadows(twin);
    EXPECT_FALSE(served_shadows.empty());

    AdapterServerOptions opts;
    opts.max_batch_size = 4;
    opts.flush_deadline_us = 500;
    opts.num_workers = 2;
    opts.autocast = AutocastPolicy::Serving(prec);
    AdapterServer server(opts);
    const int sid =
        server.RegisterSession(&served, served.conditioning_cache());
    server.Start();

    constexpr int kRequests = 12;
    std::vector<std::future<Tensor>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
      const uint64_t seed = 7000 + static_cast<uint64_t>(i);
      futures.push_back(server.Submit(sid, RandFeatures(1, seed),
                                      RandLinearInput(1, seed + 1)));
    }
    std::vector<Tensor> got;
    got.reserve(kRequests);
    for (auto& f : futures) got.push_back(f.get());
    server.Shutdown();

    // One-at-a-time twin under the identical policy.
    autograd::RuntimeContext& ctx = autograd::RuntimeContext::Current();
    const AutocastPolicy saved = ctx.autocast();
    ctx.set_autocast(opts.autocast);
    for (int i = 0; i < kRequests; ++i) {
      const uint64_t seed = 7000 + static_cast<uint64_t>(i);
      const Tensor want = SerialForward(twin, RandFeatures(1, seed),
                                        RandLinearInput(1, seed + 1));
      ExpectBitIdentical(got[static_cast<size_t>(i)], want);
      twin.conditioning_cache()->Clear();
    }
    ctx.set_autocast(saved);

    // Dispatch attribution: the requested tier ran; the other low tier
    // only appears as the int8 fallback for GEMMs with no quantized
    // shadow (dynamically generated ΔW factors).
    const ServeStats stats = server.stats();
    EXPECT_GT(stats.gemm_dispatch[static_cast<int>(prec)], 0);
    if (prec == OpPrecision::kBf16) {
      EXPECT_EQ(stats.gemm_dispatch[static_cast<int>(OpPrecision::kInt8)], 0);
    }
  }
}

TEST(AdapterServer, ResultCacheServesRepeats) {
  core::MetaLoraCpLinear adapter(BaseLinear(),
                                 MetaOpts(AdapterKind::kMetaLoraCp));
  RandomizeFactors(adapter, 31);
  AdapterServerOptions opts;
  opts.flush_deadline_us = 200;
  AdapterServer server(opts);
  const int sid = server.RegisterSession(&adapter, adapter.conditioning_cache());
  server.Start();

  const Tensor f = RandFeatures(1, 41);
  const Tensor x = RandLinearInput(1, 42);
  Tensor first = server.Submit(sid, f, x).get();
  ASSERT_TRUE(first.defined());

  constexpr int kRepeats = 16;
  std::vector<std::future<Tensor>> futures;
  futures.reserve(kRepeats);
  for (int i = 0; i < kRepeats; ++i) {
    futures.push_back(server.Submit(sid, f, x));
  }
  for (auto& fut : futures) {
    ExpectBitIdentical(fut.get(), first);
  }
  server.Shutdown();

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests_completed, kRepeats + 1);
  EXPECT_GE(stats.result_cache_hits, kRepeats);
  EXPECT_EQ(stats.result_cache_misses, 1);
}

// An optimizer-style version bump must invalidate the serve-level result
// cache: the repeat after the bump recomputes (a miss) instead of serving
// the stamped entry.
TEST(AdapterServer, VersionBumpInvalidatesResultCache) {
  core::MetaLoraTrLinear adapter(BaseLinear(),
                                 MetaOpts(AdapterKind::kMetaLoraTr));
  RandomizeFactors(adapter, 51);
  AdapterServerOptions opts;
  opts.flush_deadline_us = 200;
  AdapterServer server(opts);
  const int sid = server.RegisterSession(&adapter, adapter.conditioning_cache());
  server.Start();

  const Tensor f = RandFeatures(1, 61);
  const Tensor x = RandLinearInput(1, 62);
  Tensor cold = server.Submit(sid, f, x).get();
  Tensor warm = server.Submit(sid, f, x).get();
  ExpectBitIdentical(cold, warm);
  const int64_t misses_before = server.stats().result_cache_misses;

  autograd::BumpParameterVersion();
  // No parameter actually changed, so the recomputed bytes still match —
  // but the cache must have treated the entry as stale.
  Tensor after = server.Submit(sid, f, x).get();
  ExpectBitIdentical(cold, after);
  server.Shutdown();
  EXPECT_GT(server.stats().result_cache_misses, misses_before);
}

// Tiny queues + a stalled worker: TrySubmit must start failing (bounded
// memory), Submit-ed requests must all still complete once the worker is
// released, and rejected requests must be counted.
TEST(AdapterServer, BackpressureBoundsQueueWithoutLosingRequests) {
  core::MetaLoraCpLinear adapter(BaseLinear(),
                                 MetaOpts(AdapterKind::kMetaLoraCp));
  RandomizeFactors(adapter, 71);

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;

  AdapterServerOptions opts;
  opts.max_batch_size = 1;  // every request is its own batch
  opts.flush_deadline_us = 100;
  opts.num_workers = 1;
  opts.queue_capacity = 2;
  opts.batch_queue_capacity = 1;
  opts.worker_batch_hook = [&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  AdapterServer server(opts);
  const int sid = server.RegisterSession(&adapter, adapter.conditioning_cache());
  server.Start();

  std::vector<std::future<Tensor>> accepted;
  int rejected = 0;
  // With the worker gated, capacity is finite: request queue (2) + batch
  // queue (1) + what the batcher/worker hold. Keep trying until TrySubmit
  // fails several times in a row — the pipeline is saturated.
  int consecutive_failures = 0;
  uint64_t seed = 100;
  while (consecutive_failures < 3) {
    std::future<Tensor> fut;
    if (server.TrySubmit(sid, RandFeatures(1, seed), RandLinearInput(1, seed),
                         &fut)) {
      accepted.push_back(std::move(fut));
      consecutive_failures = 0;
    } else {
      ++consecutive_failures;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ++seed;
    ASSERT_LT(seed, 200u) << "pipeline never saturated under a gated worker";
    rejected = consecutive_failures;
  }
  EXPECT_GT(rejected, 0);
  // Bounded: accepted can't exceed the two queues plus the two threads'
  // in-hand items by much.
  EXPECT_LE(static_cast<int64_t>(accepted.size()),
            opts.queue_capacity + opts.batch_queue_capacity + 2);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();

  for (auto& fut : accepted) {
    EXPECT_TRUE(fut.get().defined())
        << "an accepted request was dropped under backpressure";
  }
  server.Shutdown();
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests_completed,
            static_cast<int64_t>(accepted.size()));
  EXPECT_GT(stats.requests_rejected, 0);
  EXPECT_LE(stats.request_queue_peak, opts.queue_capacity);
  EXPECT_LE(stats.batch_queue_peak, opts.batch_queue_capacity);
}

// Shutdown with requests still queued and in flight: every accepted
// request's future resolves with real (correct) bytes — drain, not drop.
TEST(AdapterServer, ShutdownDrainsInFlightRequests) {
  core::MetaLoraCpLinear adapter(BaseLinear(),
                                 MetaOpts(AdapterKind::kMetaLoraCp));
  core::MetaLoraCpLinear ref(BaseLinear(), MetaOpts(AdapterKind::kMetaLoraCp));
  RandomizeFactors(adapter, 81);
  RandomizeFactors(ref, 81);

  AdapterServerOptions opts;
  opts.max_batch_size = 4;
  opts.num_workers = 2;
  opts.result_cache_entries = 0;  // force every request through a forward
  opts.worker_batch_hook = [] {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  };
  AdapterServer server(opts);
  const int sid = server.RegisterSession(&adapter, adapter.conditioning_cache());
  server.Start();

  constexpr int kRequests = 32;
  std::vector<std::future<Tensor>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    const uint64_t seed = 300 + static_cast<uint64_t>(i);
    futures.push_back(
        server.Submit(sid, RandFeatures(1, seed), RandLinearInput(1, seed + 1)));
  }
  server.Shutdown();  // most requests are still queued or in flight here

  for (int i = 0; i < kRequests; ++i) {
    const uint64_t seed = 300 + static_cast<uint64_t>(i);
    Tensor got = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(got.defined()) << "request " << i << " dropped during drain";
    Tensor want =
        SerialForward(ref, RandFeatures(1, seed), RandLinearInput(1, seed + 1));
    ExpectBitIdentical(got, want);
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests_completed, kRequests);
  EXPECT_EQ(stats.requests_rejected, 0);
}

TEST(AdapterServer, SubmitAfterShutdownResolvesUndefined) {
  core::MetaLoraCpLinear adapter(BaseLinear(),
                                 MetaOpts(AdapterKind::kMetaLoraCp));
  AdapterServer server(AdapterServerOptions{});
  const int sid = server.RegisterSession(&adapter, adapter.conditioning_cache());
  server.Start();
  server.Shutdown();

  std::future<Tensor> fut =
      server.Submit(sid, RandFeatures(1, 1), RandLinearInput(1, 2));
  EXPECT_FALSE(fut.get().defined());
  std::future<Tensor> try_fut;
  EXPECT_FALSE(server.TrySubmit(sid, RandFeatures(1, 3), RandLinearInput(1, 4),
                                &try_fut));
  EXPECT_GE(server.stats().requests_rejected, 2);
}

// A partial batch (far below max_batch_size) must still flush once the
// oldest request crosses the deadline — latency is bounded without load.
TEST(AdapterServer, DeadlineFlushesPartialBatch) {
  core::MetaLoraCpLinear adapter(BaseLinear(),
                                 MetaOpts(AdapterKind::kMetaLoraCp));
  RandomizeFactors(adapter, 91);
  AdapterServerOptions opts;
  opts.max_batch_size = 64;  // never reached by 3 requests
  opts.flush_deadline_us = 1000;
  AdapterServer server(opts);
  const int sid = server.RegisterSession(&adapter, adapter.conditioning_cache());
  server.Start();

  std::vector<std::future<Tensor>> futures;
  for (uint64_t i = 0; i < 3; ++i) {
    futures.push_back(server.Submit(sid, RandFeatures(1, 500 + i),
                                    RandLinearInput(1, 600 + i)));
  }
  for (auto& fut : futures) {
    EXPECT_TRUE(fut.get().defined());
  }
  // All futures resolved before Shutdown, so the flush that carried them
  // was a deadline flush (3 < 64 rules out a size flush, and the drain
  // flush hasn't happened yet).
  const ServeStats stats = server.stats();
  EXPECT_GE(stats.deadline_flushes, 1);
  EXPECT_EQ(stats.size_flushes, 0);
  server.Shutdown();
}

// BoundedQueue primitive: FIFO order, Push blocking on full, drain-on-close.
TEST(BoundedQueueTest, FifoAndDrainAfterClose) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(q.Push(v));
  }
  int overflow = 99;
  EXPECT_FALSE(q.TryPush(overflow));
  q.Close();
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(q.Pop(&out), QueuePopStatus::kItem);
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.Pop(&out), QueuePopStatus::kClosed);
  int late = 5;
  EXPECT_FALSE(q.Push(late));
  EXPECT_EQ(q.peak_size(), 4);
}

TEST(BoundedQueueTest, PushUnblocksWhenConsumerDrains) {
  BoundedQueue<int> q(1);
  int v = 1;
  ASSERT_TRUE(q.Push(v));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    int w = 2;
    ASSERT_TRUE(q.Push(w));  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  ASSERT_EQ(q.Pop(&out), QueuePopStatus::kItem);
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_EQ(q.Pop(&out), QueuePopStatus::kItem);
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, PopForTimesOutOnEmpty) {
  BoundedQueue<int> q(2);
  int out = 0;
  EXPECT_EQ(q.PopFor(&out, 500), QueuePopStatus::kTimeout);
  int v = 7;
  ASSERT_TRUE(q.Push(v));
  EXPECT_EQ(q.PopFor(&out, 500), QueuePopStatus::kItem);
  EXPECT_EQ(out, 7);
}

}  // namespace
}  // namespace serve
}  // namespace metalora
