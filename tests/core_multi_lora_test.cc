#include "core/multi_lora.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/graph.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace core {
namespace {

AdapterOptions Opts(int num_tasks,
                    MultiLoraMode mode = MultiLoraMode::kOracleRouting) {
  AdapterOptions o;
  o.kind = AdapterKind::kMultiLora;
  o.rank = 2;
  o.alpha = 4.0f;
  o.num_tasks = num_tasks;
  o.multi_lora_mode = mode;
  o.seed = 5;
  return o;
}

std::unique_ptr<nn::Linear> BaseLinear() {
  Rng rng(1);
  return std::make_unique<nn::Linear>(6, 4, true, rng);
}

std::unique_ptr<nn::Conv2d> BaseConv() {
  Rng rng(1);
  return std::make_unique<nn::Conv2d>(2, 4, 3, 1, 1, false, rng);
}

// Sets every branch-b parameter of task `t` to distinct nonzero values.
void ActivateBranch(nn::Module& m, int t, float value) {
  for (auto& np : m.NamedParameters()) {
    if (np.name == "lora_b" + std::to_string(t)) {
      np.variable->mutable_value().Fill(value);
    }
  }
}

TEST(MultiLoraLinearTest, StartsAtPretrainedPoint) {
  MultiLoraLinear ml(BaseLinear(), Opts(3));
  ml.SetTaskIds({0, 1, 2});
  Rng rng(2);
  Tensor x = RandomNormal(Shape{3, 6}, rng);
  autograd::NoGradGuard g;
  Tensor out = ml.Forward(Variable(x, false)).value();
  // All B branches zero-init: output equals frozen base.
  Tensor base_params_out =
      ml.Child("base")->Forward(Variable(x, false)).value();
  EXPECT_TRUE(AllClose(out, base_params_out, 1e-6f, 1e-6f));
}

TEST(MultiLoraLinearTest, RoutesSamplesToOwnBranch) {
  MultiLoraLinear ml(BaseLinear(), Opts(2));
  ActivateBranch(ml, 1, 0.7f);  // only task 1's branch is nonzero
  Rng rng(3);
  Tensor x = RandomNormal(Shape{4, 6}, rng);
  autograd::NoGradGuard g;
  Tensor base_out = ml.Child("base")->Forward(Variable(x, false)).value();

  ml.SetTaskIds({0, 1, 0, 1});
  Tensor out = ml.Forward(Variable(x, false)).value();
  // Task-0 rows untouched; task-1 rows changed.
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out.flat(0 * 4 + j), base_out.flat(0 * 4 + j), 1e-5);
    EXPECT_NEAR(out.flat(2 * 4 + j), base_out.flat(2 * 4 + j), 1e-5);
  }
  float diff1 = 0;
  for (int64_t j = 0; j < 4; ++j) {
    diff1 += std::fabs(out.flat(1 * 4 + j) - base_out.flat(1 * 4 + j));
  }
  EXPECT_GT(diff1, 1e-3f);
}

TEST(MultiLoraLinearTest, ForwardWithoutTaskIdsDies) {
  MultiLoraLinear ml(BaseLinear(), Opts(2));
  Variable x(Tensor::Ones(Shape{2, 6}), false);
  EXPECT_DEATH(ml.Forward(x), "task ids");
}

TEST(MultiLoraLinearTest, ParamCountScalesWithTasks) {
  MultiLoraLinear two(BaseLinear(), Opts(2));
  MultiLoraLinear four(BaseLinear(), Opts(4));
  EXPECT_EQ(four.AdapterParamCount(), 2 * two.AdapterParamCount());
}

TEST(MultiLoraLinearTest, GradientsOnlyReachActiveBranches) {
  MultiLoraLinear ml(BaseLinear(), Opts(3));
  Rng rng(4);
  Variable x(RandomNormal(Shape{4, 6}, rng), false);
  ml.SetTaskIds({0, 0, 1, 1});  // task 2 absent from the batch
  Variable y = ml.Forward(x);
  ASSERT_TRUE(autograd::Backward(autograd::SumAll(autograd::Mul(y, y))).ok());
  for (auto& np : ml.NamedParameters()) {
    if (np.name == "lora_a2" || np.name == "lora_b2") {
      EXPECT_FALSE(np.variable->grad().defined()) << np.name;
    }
    if (np.name == "lora_a0" || np.name == "lora_b0") {
      EXPECT_TRUE(np.variable->grad().defined()) << np.name;
    }
  }
}

TEST(MultiLoraConvTest, RoutesSamplesToOwnBranch) {
  MultiLoraConv ml(BaseConv(), Opts(2));
  ActivateBranch(ml, 0, 0.5f);
  Rng rng(5);
  Tensor x = RandomNormal(Shape{2, 2, 5, 5}, rng);
  autograd::NoGradGuard g;
  Tensor base_out = ml.Child("base")->Forward(Variable(x, false)).value();
  ml.SetTaskIds({1, 0});
  Tensor out = ml.Forward(Variable(x, false)).value();
  const int64_t plane = 4 * 5 * 5;
  float diff0 = 0, diff1 = 0;
  for (int64_t k = 0; k < plane; ++k) {
    diff0 += std::fabs(out.flat(k) - base_out.flat(k));
    diff1 += std::fabs(out.flat(plane + k) - base_out.flat(plane + k));
  }
  EXPECT_LT(diff0, 1e-4f);  // sample 0 is task 1 (inactive branch)
  EXPECT_GT(diff1, 1e-2f);  // sample 1 is task 0 (active branch)
}

TEST(MultiLoraConvTest, StartsAtPretrainedPoint) {
  MultiLoraConv ml(BaseConv(), Opts(3));
  ml.SetTaskIds({0, 1});
  Rng rng(6);
  Tensor x = RandomNormal(Shape{2, 2, 5, 5}, rng);
  autograd::NoGradGuard g;
  Tensor out = ml.Forward(Variable(x, false)).value();
  Tensor base_out = ml.Child("base")->Forward(Variable(x, false)).value();
  EXPECT_TRUE(AllClose(out, base_out, 1e-6f, 1e-6f));
}

TEST(MultiLoraLinearTest, SumModeNeedsNoTaskIds) {
  MultiLoraLinear ml(BaseLinear(), Opts(3, MultiLoraMode::kSum));
  Rng rng(7);
  Tensor x = RandomNormal(Shape{2, 6}, rng);
  autograd::NoGradGuard g;
  // No SetTaskIds call: sum mode must still work (and equal the base at
  // init, since every B is zero).
  Tensor out = ml.Forward(Variable(x, false)).value();
  Tensor base_out = ml.Child("base")->Forward(Variable(x, false)).value();
  EXPECT_TRUE(AllClose(out, base_out, 1e-6f, 1e-6f));
}

TEST(MultiLoraLinearTest, SumModeCombinesAllBranches) {
  MultiLoraLinear ml(BaseLinear(), Opts(2, MultiLoraMode::kSum));
  ActivateBranch(ml, 0, 0.3f);
  ActivateBranch(ml, 1, 0.3f);
  Rng rng(8);
  Tensor x = RandomNormal(Shape{3, 6}, rng);
  autograd::NoGradGuard g;
  Tensor out = ml.Forward(Variable(x, false)).value();
  Tensor base_out = ml.Child("base")->Forward(Variable(x, false)).value();
  // Every row is affected (no routing).
  for (int64_t i = 0; i < 3; ++i) {
    float diff = 0;
    for (int64_t j = 0; j < 4; ++j)
      diff += std::fabs(out.flat(i * 4 + j) - base_out.flat(i * 4 + j));
    EXPECT_GT(diff, 1e-4f) << "row " << i;
  }
}

TEST(MultiLoraLinearTest, SumModeBranchScalesAreTrainable) {
  MultiLoraLinear ml(BaseLinear(), Opts(2, MultiLoraMode::kSum));
  ActivateBranch(ml, 0, 0.5f);
  Rng rng(9);
  Variable x(RandomNormal(Shape{2, 6}, rng), false);
  Variable y = ml.Forward(x);
  ASSERT_TRUE(autograd::Backward(autograd::SumAll(autograd::Mul(y, y))).ok());
  bool scale_has_grad = false;
  for (auto& np : ml.NamedParameters()) {
    if (np.name == "scale0" && np.variable->grad().defined())
      scale_has_grad = true;
  }
  EXPECT_TRUE(scale_has_grad);
}

TEST(MultiLoraConvTest, BaseRemainsFrozen) {
  MultiLoraConv ml(BaseConv(), Opts(2));
  EXPECT_EQ(ml.Child("base")->TrainableParamCount(), 0);
  EXPECT_GT(ml.TrainableParamCount(), 0);
}

}  // namespace
}  // namespace core
}  // namespace metalora
