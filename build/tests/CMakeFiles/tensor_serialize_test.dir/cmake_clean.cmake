file(REMOVE_RECURSE
  "CMakeFiles/tensor_serialize_test.dir/tensor_serialize_test.cc.o"
  "CMakeFiles/tensor_serialize_test.dir/tensor_serialize_test.cc.o.d"
  "tensor_serialize_test"
  "tensor_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
