# Empty dependencies file for ml_tn.
# This may be replaced when dependencies are built.
