#include <utility>
#include <vector>

#include "autograd/op.h"
#include "autograd/ops.h"
#include "tensor/conv_ops.h"

namespace metalora {
namespace autograd {

namespace {

class Conv2dOp final : public Op {
 public:
  Conv2dOp(Tensor x, Tensor w, const ConvGeom& geom, bool has_bias)
      : Op("Conv2d"),
        x_(Save(std::move(x))),
        w_(Save(std::move(w))),
        geom_(geom),
        has_bias_(has_bias) {}

  std::vector<Tensor> Backward(RuntimeContext&, const Tensor& g) override {
    Tensor gx, gw, gb;
    Conv2dBackward(x_.get(), w_.get(), g, geom_, &gx, &gw,
                   has_bias_ ? &gb : nullptr, has_bias_);
    std::vector<Tensor> grads = {gx, gw};
    if (has_bias_) grads.push_back(gb);
    return grads;
  }

 private:
  SavedTensor x_, w_;
  ConvGeom geom_;
  bool has_bias_;
};

class MaxPool2dOp final : public Op {
 public:
  MaxPool2dOp(Shape in_shape, std::vector<int64_t> argmax)
      : Op("MaxPool2d"),
        in_shape_(std::move(in_shape)),
        argmax_(std::move(argmax)) {}

  std::vector<Tensor> Backward(RuntimeContext&, const Tensor& g) override {
    return {MaxPool2dBackward(g, in_shape_, argmax_)};
  }

 private:
  Shape in_shape_;
  std::vector<int64_t> argmax_;
};

class AvgPool2dOp final : public Op {
 public:
  AvgPool2dOp(Shape in_shape, const ConvGeom& geom)
      : Op("AvgPool2d"), in_shape_(std::move(in_shape)), geom_(geom) {}

  std::vector<Tensor> Backward(RuntimeContext&, const Tensor& g) override {
    return {AvgPool2dBackward(g, in_shape_, geom_)};
  }

 private:
  Shape in_shape_;
  ConvGeom geom_;
};

class GlobalAvgPoolOp final : public Op {
 public:
  explicit GlobalAvgPoolOp(Shape in_shape)
      : Op("GlobalAvgPool"), in_shape_(std::move(in_shape)) {}

  std::vector<Tensor> Backward(RuntimeContext&, const Tensor& g) override {
    return {GlobalAvgPoolBackward(g, in_shape_)};
  }

 private:
  Shape in_shape_;
};

}  // namespace

Variable Conv2d(const Variable& x, const Variable& weight,
                const Variable& bias, const ConvGeom& geom) {
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "Conv2d");
  const bool has_bias = bias.defined();
  const int64_t ho = geom.OutExtent(x.dim(2), geom.kernel_h);
  const int64_t wo = geom.OutExtent(x.dim(3), geom.kernel_w);
  // The im2col GEMM consults the autocast policy's conv category (resolves
  // to fp32 whenever gradients are recorded); backward is always fp32.
  const OpPrecision prec = ctx.PrecisionFor(OpCategory::kConv);
  ctx.RecordGemmDispatch(prec);
  Tensor out = ctx.AllocResult(Shape{x.dim(0), weight.dim(0), ho, wo});
  Conv2dForwardInto(x.value(), weight.value(),
                    has_bias ? bias.value() : Tensor(), geom, &out, prec);
  prof.set_output(out);
  if (TraceRecorder* rec = ctx.trace_recorder()) {
    rec->RecordConv2d(x.value(), weight.value(),
                      has_bias ? &bias.value() : nullptr, out, geom, prec);
  }
  std::vector<Variable> inputs =
      has_bias ? std::vector<Variable>{x, weight, bias}
               : std::vector<Variable>{x, weight};
  return MakeOpResult<Conv2dOp>(std::move(out), std::move(inputs), x.value(),
                                weight.value(), geom, has_bias);
}

Variable MaxPool2d(const Variable& x, const ConvGeom& geom) {
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "MaxPool2d");
  const int64_t ho = geom.OutExtent(x.dim(2), geom.kernel_h);
  const int64_t wo = geom.OutExtent(x.dim(3), geom.kernel_w);
  Tensor out = ctx.AllocResultUninit(Shape{x.dim(0), x.dim(1), ho, wo});
  std::vector<int64_t> argmax;
  MaxPool2dInto(x.value(), geom, &argmax, &out);
  prof.set_output(out);
  return MakeOpResult<MaxPool2dOp>(std::move(out), {x}, x.shape(),
                                   std::move(argmax));
}

Variable AvgPool2d(const Variable& x, const ConvGeom& geom) {
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "AvgPool2d");
  const int64_t ho = geom.OutExtent(x.dim(2), geom.kernel_h);
  const int64_t wo = geom.OutExtent(x.dim(3), geom.kernel_w);
  Tensor out = ctx.AllocResultUninit(Shape{x.dim(0), x.dim(1), ho, wo});
  AvgPool2dInto(x.value(), geom, &out);
  prof.set_output(out);
  return MakeOpResult<AvgPool2dOp>(std::move(out), {x}, x.shape(), geom);
}

Variable GlobalAvgPool(const Variable& x) {
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "GlobalAvgPool");
  Tensor out = ctx.AllocResultUninit(Shape{x.dim(0), x.dim(1)});
  GlobalAvgPoolInto(x.value(), &out);
  prof.set_output(out);
  return MakeOpResult<GlobalAvgPoolOp>(std::move(out), {x}, x.shape());
}

}  // namespace autograd
}  // namespace metalora
