#include "autograd/parallel.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <utility>

#include "autograd/op.h"
#include "common/check.h"

namespace metalora {
namespace autograd {

namespace {

std::atomic<bool> g_dispatch_enabled{true};
std::atomic<ThreadPool*> g_dispatch_pool{nullptr};

// Free list of scratch arenas for no-grad branches and eval blocks. Arenas
// keep their grown blocks between uses, so steady-state dispatch does no
// heap allocation here; the list is tiny (bounded by peak concurrent
// tasks), so a mutex is fine.
std::mutex g_scratch_mu;
std::vector<std::unique_ptr<WorkspaceArena>> g_scratch_arenas;

std::unique_ptr<WorkspaceArena> AcquireScratchArena() {
  {
    std::lock_guard<std::mutex> lock(g_scratch_mu);
    if (!g_scratch_arenas.empty()) {
      std::unique_ptr<WorkspaceArena> arena =
          std::move(g_scratch_arenas.back());
      g_scratch_arenas.pop_back();
      return arena;
    }
  }
  return std::make_unique<WorkspaceArena>();
}

void ReleaseScratchArena(std::unique_ptr<WorkspaceArena> arena) {
  std::lock_guard<std::mutex> lock(g_scratch_mu);
  g_scratch_arenas.push_back(std::move(arena));
}

}  // namespace

void SetParallelDispatchEnabled(bool enabled) {
  g_dispatch_enabled.store(enabled, std::memory_order_relaxed);
}

bool ParallelDispatchEnabled() {
  return g_dispatch_enabled.load(std::memory_order_relaxed);
}

void SetParallelDispatchPool(ThreadPool* pool) {
  g_dispatch_pool.store(pool, std::memory_order_relaxed);
}

ThreadPool& ParallelDispatchPool() {
  ThreadPool* pool = g_dispatch_pool.load(std::memory_order_relaxed);
  return pool != nullptr ? *pool : GlobalThreadPool();
}

struct ParallelScope::BranchSlot {
  RuntimeContext ctx;
  std::unique_ptr<WorkspaceArena> arena;  // no-grad fast path only
  Variable result;
};

ParallelScope::ParallelScope(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ParallelDispatchPool()) {}

ParallelScope::~ParallelScope() {
  for (auto& slot : slots_) {
    if (slot->arena != nullptr) ReleaseScratchArena(std::move(slot->arena));
  }
}

void ParallelScope::Spawn(std::function<Variable()> fn) {
  ML_CHECK(fn != nullptr);
  ML_CHECK(!joined_) << "ParallelScope: Spawn after Join";
  branches_.push_back(std::move(fn));
}

std::vector<Variable> ParallelScope::Join() {
  ML_CHECK(!joined_) << "ParallelScope: Join called twice";
  joined_ = true;
  const size_t n = branches_.size();
  std::vector<Variable> results(n);

  // Serial path: no workers, dispatch off, nothing to overlap, already
  // inside a pool task (a nested fork would schedule behind the very tasks
  // occupying the workers), or a plan trace is recording (branches must run
  // in the caller's context so the recorder sees the whole program in
  // order; serial == parallel bit-identity is this scope's contract, so the
  // recorded plan reproduces the parallel path's bytes too). Runs in the
  // caller's context, spawn order — exactly the code the consumers ran
  // before dispatch existed.
  if (n <= 1 || !ParallelDispatchEnabled() || pool_->num_threads() == 0 ||
      ThreadPool::InWorkerThread() ||
      RuntimeContext::Current().trace_recorder() != nullptr) {
    for (size_t i = 0; i < n; ++i) results[i] = branches_[i]();
    return results;
  }

  RuntimeContext& parent = RuntimeContext::Current();
  const bool scratch_arenas = !parent.grad_enabled() && parent.arena();
  slots_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto slot = std::make_unique<BranchSlot>();
    slot->ctx.set_grad_enabled(parent.grad_enabled());
    slot->ctx.set_profiling(parent.profiling());
    slot->ctx.set_autocast(parent.autocast());
    if (scratch_arenas) {
      slot->arena = AcquireScratchArena();
      slot->arena->NextGeneration();
      slot->ctx.set_arena(slot->arena.get());
    }
    slots_.push_back(std::move(slot));
  }

  auto latch = std::make_shared<Latch>(static_cast<int64_t>(n) - 1);
  for (size_t i = 1; i < n; ++i) {
    BranchSlot* slot = slots_[i].get();
    std::function<Variable()>* branch = &branches_[i];
    pool_->Schedule([slot, branch, latch] {
      RuntimeContextScope scope(&slot->ctx);
      slot->result = (*branch)();
      latch->CountDown();
    });
  }
  // The caller takes the first branch; its kernels may still fan out onto
  // the pool (the free workers drain those chunks once their branch ends).
  {
    RuntimeContextScope scope(&slots_[0]->ctx);
    slots_[0]->result = branches_[0]();
  }
  latch->Wait();

  // Stitch: fold branch recording state into the caller's context in spawn
  // order, so merged stats never depend on the execution interleaving.
  for (size_t i = 0; i < n; ++i) {
    parent.MergeChildStats(slots_[i]->ctx);
    results[i] = std::move(slots_[i]->result);
  }
  return results;
}

bool BranchesIndependent(const std::vector<Variable>& roots) {
  std::unordered_set<const Op*> seen;
  for (const Variable& root : roots) {
    if (!root.defined() || root.producer() == nullptr) continue;
    // Collect this root's op nodes, then verify none was reached from an
    // earlier root. A root may reference its own ops through several paths
    // (a DAG), so dedupe within the root first.
    std::unordered_set<const Op*> own;
    std::vector<const Op*> stack = {root.producer().get()};
    own.insert(root.producer().get());
    while (!stack.empty()) {
      const Op* op = stack.back();
      stack.pop_back();
      for (const Variable& in : op->inputs()) {
        const Op* next = in.producer().get();
        if (next != nullptr && own.insert(next).second) stack.push_back(next);
      }
    }
    for (const Op* op : own) {
      if (!seen.insert(op).second) return false;
    }
  }
  return true;
}

void ParallelApplyNoGrad(
    int64_t begin, int64_t end, int64_t block,
    const std::function<void(int64_t, int64_t, RuntimeContext&)>& fn,
    ThreadPool* pool) {
  ML_CHECK_LE(begin, end);
  ML_CHECK_GT(block, 0);
  if (begin == end) return;
  ThreadPool& p = pool != nullptr ? *pool : ParallelDispatchPool();
  const int64_t nblocks = (end - begin + block - 1) / block;

  // One chunk of consecutive blocks per task; a chunk shares one scratch
  // arena, Reset between blocks. Block boundaries — and therefore every
  // number fn computes — are independent of the chunking.
  struct ChunkState {
    RuntimeContext ctx;
    std::unique_ptr<WorkspaceArena> arena;
  };
  auto run_chunk = [&](ChunkState& state, int64_t blk_lo, int64_t blk_hi) {
    RuntimeContextScope scope(&state.ctx);
    for (int64_t b = blk_lo; b < blk_hi; ++b) {
      const int64_t lo = begin + b * block;
      const int64_t hi = std::min(end, lo + block);
      state.arena->NextGeneration();
      fn(lo, hi, state.ctx);
    }
  };

  const int64_t nchunks =
      (!ParallelDispatchEnabled() || p.num_threads() == 0 ||
       ThreadPool::InWorkerThread())
          ? 1
          : std::min<int64_t>(nblocks, p.num_threads() + 1);
  const int64_t blocks_per_chunk = (nblocks + nchunks - 1) / nchunks;

  std::vector<std::unique_ptr<ChunkState>> chunks;
  chunks.reserve(static_cast<size_t>(nchunks));
  RuntimeContext& caller = RuntimeContext::Current();
  for (int64_t c = 0; c < nchunks; ++c) {
    auto state = std::make_unique<ChunkState>();
    state->ctx.set_grad_enabled(false);
    state->ctx.set_autocast(caller.autocast());
    state->arena = AcquireScratchArena();
    state->ctx.set_arena(state->arena.get());
    chunks.push_back(std::move(state));
  }

  auto latch = std::make_shared<Latch>(nchunks - 1);
  for (int64_t c = 1; c < nchunks; ++c) {
    ChunkState* state = chunks[static_cast<size_t>(c)].get();
    const int64_t blk_lo = c * blocks_per_chunk;
    const int64_t blk_hi = std::min(nblocks, blk_lo + blocks_per_chunk);
    p.Schedule([&run_chunk, state, blk_lo, blk_hi, latch] {
      run_chunk(*state, blk_lo, blk_hi);
      latch->CountDown();
    });
  }
  run_chunk(*chunks[0], 0, std::min(nblocks, blocks_per_chunk));
  latch->Wait();

  RuntimeContext& parent = RuntimeContext::Current();
  for (auto& state : chunks) {
    parent.MergeChildStats(state->ctx);
    ReleaseScratchArena(std::move(state->arena));
  }
}

}  // namespace autograd
}  // namespace metalora
