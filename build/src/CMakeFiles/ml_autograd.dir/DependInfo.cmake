
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/gradcheck.cc" "src/CMakeFiles/ml_autograd.dir/autograd/gradcheck.cc.o" "gcc" "src/CMakeFiles/ml_autograd.dir/autograd/gradcheck.cc.o.d"
  "/root/repo/src/autograd/graph.cc" "src/CMakeFiles/ml_autograd.dir/autograd/graph.cc.o" "gcc" "src/CMakeFiles/ml_autograd.dir/autograd/graph.cc.o.d"
  "/root/repo/src/autograd/ops_basic.cc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_basic.cc.o" "gcc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_basic.cc.o.d"
  "/root/repo/src/autograd/ops_conv.cc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_conv.cc.o" "gcc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_conv.cc.o.d"
  "/root/repo/src/autograd/ops_loss.cc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_loss.cc.o" "gcc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_loss.cc.o.d"
  "/root/repo/src/autograd/ops_matmul.cc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_matmul.cc.o" "gcc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_matmul.cc.o.d"
  "/root/repo/src/autograd/ops_norm.cc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_norm.cc.o" "gcc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_norm.cc.o.d"
  "/root/repo/src/autograd/ops_shape.cc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_shape.cc.o" "gcc" "src/CMakeFiles/ml_autograd.dir/autograd/ops_shape.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/ml_autograd.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/ml_autograd.dir/autograd/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ml_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
