#include "common/cli.h"

#include <cstdlib>

#include "common/check.h"
#include "common/string_util.h"

namespace metalora {

void CommandLine::AddInt(const std::string& name, int64_t default_value,
                         const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  ML_CHECK(flags_.emplace(name, std::move(f)).second)
      << "duplicate flag " << name;
  order_.push_back(name);
}

void CommandLine::AddDouble(const std::string& name, double default_value,
                            const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  ML_CHECK(flags_.emplace(name, std::move(f)).second)
      << "duplicate flag " << name;
  order_.push_back(name);
}

void CommandLine::AddBool(const std::string& name, bool default_value,
                          const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  ML_CHECK(flags_.emplace(name, std::move(f)).second)
      << "duplicate flag " << name;
  order_.push_back(name);
}

void CommandLine::AddString(const std::string& name,
                            const std::string& default_value,
                            const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  ML_CHECK(flags_.emplace(name, std::move(f)).second)
      << "duplicate flag " << name;
  order_.push_back(name);
}

Status CommandLine::SetFromString(Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0')
        return Status::InvalidArgument("bad integer: " + value);
      flag.int_value = v;
      return Status::OK();
    }
    case Type::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0')
        return Status::InvalidArgument("bad double: " + value);
      flag.double_value = v;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("bad bool: " + value);
      }
      return Status::OK();
    }
    case Type::kString:
      flag.string_value = value;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status CommandLine::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    std::string body = arg.substr(2);
    std::string name, value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      value = argv[++i];
    }
    ML_RETURN_IF_ERROR(SetFromString(flag, value));
  }
  return Status::OK();
}

int64_t CommandLine::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  ML_CHECK(it != flags_.end()) << "unknown flag " << name;
  ML_CHECK(it->second.type == Type::kInt);
  return it->second.int_value;
}

double CommandLine::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  ML_CHECK(it != flags_.end()) << "unknown flag " << name;
  ML_CHECK(it->second.type == Type::kDouble);
  return it->second.double_value;
}

bool CommandLine::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  ML_CHECK(it != flags_.end()) << "unknown flag " << name;
  ML_CHECK(it->second.type == Type::kBool);
  return it->second.bool_value;
}

const std::string& CommandLine::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  ML_CHECK(it != flags_.end()) << "unknown flag " << name;
  ML_CHECK(it->second.type == Type::kString);
  return it->second.string_value;
}

std::string CommandLine::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    std::string def;
    switch (f.type) {
      case Type::kInt:
        def = std::to_string(f.int_value);
        break;
      case Type::kDouble:
        def = StrFormat("%g", f.double_value);
        break;
      case Type::kBool:
        def = f.bool_value ? "true" : "false";
        break;
      case Type::kString:
        def = f.string_value;
        break;
    }
    out += StrFormat("  --%-20s %s (default: %s)\n", name.c_str(),
                     f.help.c_str(), def.c_str());
  }
  return out;
}

}  // namespace metalora
