# Empty compiler generated dependencies file for ml_tensor.
# This may be replaced when dependencies are built.
