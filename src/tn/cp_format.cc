#include "tn/cp_format.h"

#include <cmath>

#include "tensor/matmul.h"
#include "tensor/random_init.h"

namespace metalora {
namespace tn {

CpFormat::CpFormat(std::vector<int64_t> mode_dims, int64_t rank)
    : mode_dims_(std::move(mode_dims)), rank_(rank) {
  ML_CHECK_GT(rank_, 0);
  ML_CHECK(!mode_dims_.empty());
  factors_.reserve(mode_dims_.size());
  for (int64_t d : mode_dims_) {
    ML_CHECK_GT(d, 0);
    factors_.emplace_back(Shape{d, rank_});
  }
  lambda_ = Tensor::Ones(Shape{rank_});
}

CpFormat CpFormat::Random(std::vector<int64_t> mode_dims, int64_t rank,
                          Rng& rng) {
  CpFormat cp(std::move(mode_dims), rank);
  const float stddev = 1.0f / std::sqrt(static_cast<float>(rank));
  for (auto& f : cp.factors_) FillNormal(f, rng, 0.0f, stddev);
  return cp;
}

const Tensor& CpFormat::factor(int n) const {
  ML_CHECK(n >= 0 && n < order());
  return factors_[static_cast<size_t>(n)];
}

Tensor& CpFormat::mutable_factor(int n) {
  ML_CHECK(n >= 0 && n < order());
  return factors_[static_cast<size_t>(n)];
}

Tensor CpFormat::Reconstruct() const {
  // Accumulate rank-1 terms. For each r the term is the outer product of the
  // factor columns scaled by λ_r; we expand mode by mode:
  //   T_1 = λ_r * A^(1)[:, r]          (length I_1)
  //   T_n = T_{n-1} ⊗ A^(n)[:, r]      (flattened outer product)
  Tensor out{Shape(mode_dims_)};
  const int n_modes = order();
  std::vector<float> cur, next;
  for (int64_t r = 0; r < rank_; ++r) {
    cur.assign(1, lambda_.flat(r));
    for (int m = 0; m < n_modes; ++m) {
      const Tensor& f = factors_[static_cast<size_t>(m)];
      const int64_t dim = mode_dims_[static_cast<size_t>(m)];
      next.resize(cur.size() * static_cast<size_t>(dim));
      size_t k = 0;
      for (float cv : cur) {
        for (int64_t i = 0; i < dim; ++i) {
          next[k++] = cv * f.flat(i * rank_ + r);
        }
      }
      cur.swap(next);
    }
    float* po = out.data();
    for (size_t i = 0; i < cur.size(); ++i) po[i] += cur[i];
  }
  return out;
}

int64_t CpFormat::ParamCount() const {
  int64_t n = rank_;
  for (int64_t d : mode_dims_) n += d * rank_;
  return n;
}

int64_t CpFormat::DenseParamCount() const {
  int64_t n = 1;
  for (int64_t d : mode_dims_) n *= d;
  return n;
}

Result<Tensor> CpMatrix(const Tensor& a, const Tensor& b, const Tensor& c) {
  if (a.rank() != 2 || b.rank() != 2 || c.rank() != 1) {
    return Status::InvalidArgument("CpMatrix expects a[I,R], b[R,O], c[R]");
  }
  const int64_t i_dim = a.dim(0), r = a.dim(1);
  if (b.dim(0) != r || c.dim(0) != r) {
    return Status::InvalidArgument("CpMatrix rank mismatch: a has R=" +
                                   std::to_string(r) + ", b has R=" +
                                   std::to_string(b.dim(0)) + ", c has R=" +
                                   std::to_string(c.dim(0)));
  }
  // (A · diag(c)) · B, fused: scale A's columns by c, then matmul.
  Tensor scaled{Shape{i_dim, r}};
  const float* pa = a.data();
  const float* pc = c.data();
  float* ps = scaled.data();
  for (int64_t i = 0; i < i_dim; ++i) {
    for (int64_t k = 0; k < r; ++k) ps[i * r + k] = pa[i * r + k] * pc[k];
  }
  return Matmul(scaled, b);
}

}  // namespace tn
}  // namespace metalora
