
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataloader.cc" "src/CMakeFiles/ml_data.dir/data/dataloader.cc.o" "gcc" "src/CMakeFiles/ml_data.dir/data/dataloader.cc.o.d"
  "/root/repo/src/data/synthetic_images.cc" "src/CMakeFiles/ml_data.dir/data/synthetic_images.cc.o" "gcc" "src/CMakeFiles/ml_data.dir/data/synthetic_images.cc.o.d"
  "/root/repo/src/data/synthetic_recsys.cc" "src/CMakeFiles/ml_data.dir/data/synthetic_recsys.cc.o" "gcc" "src/CMakeFiles/ml_data.dir/data/synthetic_recsys.cc.o.d"
  "/root/repo/src/data/task_suite.cc" "src/CMakeFiles/ml_data.dir/data/task_suite.cc.o" "gcc" "src/CMakeFiles/ml_data.dir/data/task_suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ml_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
