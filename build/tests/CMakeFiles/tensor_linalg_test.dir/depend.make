# Empty dependencies file for tensor_linalg_test.
# This may be replaced when dependencies are built.
