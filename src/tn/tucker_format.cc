#include "tn/tucker_format.h"

#include <cmath>

#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"
#include "tn/contraction.h"

namespace metalora {
namespace tn {

Result<Tensor> ModeProduct(const Tensor& x, const Tensor& u, int mode) {
  if (u.rank() != 2) {
    return Status::InvalidArgument("ModeProduct: factor must be a matrix");
  }
  if (mode < 0 || mode >= x.rank()) {
    return Status::InvalidArgument("ModeProduct: bad mode");
  }
  if (u.dim(1) != x.dim(mode)) {
    return Status::InvalidArgument("ModeProduct: extent mismatch");
  }
  // Contract x's `mode` axis against u's second axis; the contraction places
  // the new axis (u's first) last, so rotate it back into position.
  ML_ASSIGN_OR_RETURN(Tensor c, Contract(x, u, {mode}, {1}));
  // c has x's free axes in order, then u's first axis last. Build the
  // permutation that moves the last axis back to `mode`.
  const int r = c.rank();
  std::vector<int> perm;
  perm.reserve(static_cast<size_t>(r));
  int free_idx = 0;
  for (int i = 0; i < r; ++i) {
    if (i == mode) {
      perm.push_back(r - 1);
    } else {
      perm.push_back(free_idx++);
    }
  }
  return metalora::Permute(c, perm);
}

TuckerFormat::TuckerFormat(std::vector<int64_t> mode_dims,
                           std::vector<int64_t> ranks)
    : mode_dims_(std::move(mode_dims)), ranks_(std::move(ranks)) {
  ML_CHECK(!mode_dims_.empty());
  ML_CHECK_EQ(mode_dims_.size(), ranks_.size());
  for (size_t n = 0; n < mode_dims_.size(); ++n) {
    ML_CHECK(ranks_[n] >= 1 && ranks_[n] <= mode_dims_[n])
        << "Tucker rank " << ranks_[n] << " invalid for mode of extent "
        << mode_dims_[n];
    factors_.emplace_back(Shape{mode_dims_[n], ranks_[n]});
  }
  core_ = Tensor{Shape(ranks_)};
}

TuckerFormat TuckerFormat::Random(std::vector<int64_t> mode_dims,
                                  std::vector<int64_t> ranks, Rng& rng) {
  TuckerFormat t(std::move(mode_dims), std::move(ranks));
  for (size_t n = 0; n < t.factors_.size(); ++n) {
    FillNormal(t.factors_[n], rng, 0.0f,
               1.0f / std::sqrt(static_cast<float>(t.mode_dims_[n])));
  }
  FillNormal(t.core_, rng, 0.0f, 1.0f);
  return t;
}

const Tensor& TuckerFormat::factor(int n) const {
  ML_CHECK(n >= 0 && n < order());
  return factors_[static_cast<size_t>(n)];
}

Tensor& TuckerFormat::mutable_factor(int n) {
  ML_CHECK(n >= 0 && n < order());
  return factors_[static_cast<size_t>(n)];
}

Tensor TuckerFormat::Reconstruct() const {
  Tensor x = core_;
  for (int n = 0; n < order(); ++n) {
    auto r = ModeProduct(x, factors_[static_cast<size_t>(n)], n);
    ML_CHECK(r.ok()) << r.status().ToString();
    x = r.value();
  }
  return x;
}

int64_t TuckerFormat::ParamCount() const {
  int64_t core = 1;
  for (int64_t r : ranks_) core *= r;
  int64_t total = core;
  for (size_t n = 0; n < mode_dims_.size(); ++n) {
    total += mode_dims_[n] * ranks_[n];
  }
  return total;
}

int64_t TuckerFormat::DenseParamCount() const {
  int64_t n = 1;
  for (int64_t d : mode_dims_) n *= d;
  return n;
}

}  // namespace tn
}  // namespace metalora
