file(REMOVE_RECURSE
  "CMakeFiles/ml_data.dir/data/dataloader.cc.o"
  "CMakeFiles/ml_data.dir/data/dataloader.cc.o.d"
  "CMakeFiles/ml_data.dir/data/synthetic_images.cc.o"
  "CMakeFiles/ml_data.dir/data/synthetic_images.cc.o.d"
  "CMakeFiles/ml_data.dir/data/synthetic_recsys.cc.o"
  "CMakeFiles/ml_data.dir/data/synthetic_recsys.cc.o.d"
  "CMakeFiles/ml_data.dir/data/task_suite.cc.o"
  "CMakeFiles/ml_data.dir/data/task_suite.cc.o.d"
  "libml_data.a"
  "libml_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
