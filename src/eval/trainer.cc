#include "eval/trainer.h"

#include <cstring>
#include <optional>

#include "autograd/graph.h"
#include "autograd/ops.h"
#include "autograd/runtime_context.h"
#include "common/logging.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "optim/adam.h"
#include "optim/grad_clip.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace eval {

std::string BackboneKindName(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kResNet:
      return "ResNet";
    case BackboneKind::kMlpMixer:
      return "MLP-Mixer";
    case BackboneKind::kTransformer:
      return "ViT";
  }
  return "Unknown";
}

Backbone MakeResNetBackbone(const nn::ResNetConfig& config) {
  Backbone bb;
  auto net = std::make_unique<nn::ResNet>(config);
  nn::ResNet* raw = net.get();
  bb.module = std::move(net);
  bb.forward_features = [raw](const nn::Variable& x) {
    return raw->ForwardFeatures(x);
  };
  bb.forward_logits = [raw](const nn::Variable& x) { return raw->Forward(x); };
  bb.feature_dim = raw->feature_dim();
  return bb;
}

Backbone MakeMixerBackbone(const nn::MlpMixerConfig& config) {
  Backbone bb;
  auto net = std::make_unique<nn::MlpMixer>(config);
  nn::MlpMixer* raw = net.get();
  bb.module = std::move(net);
  bb.forward_features = [raw](const nn::Variable& x) {
    return raw->ForwardFeatures(x);
  };
  bb.forward_logits = [raw](const nn::Variable& x) { return raw->Forward(x); };
  bb.feature_dim = raw->feature_dim();
  return bb;
}

Backbone MakeTransformerBackbone(const nn::TransformerConfig& config) {
  Backbone bb;
  auto net = std::make_unique<nn::VisionTransformer>(config);
  nn::VisionTransformer* raw = net.get();
  bb.module = std::move(net);
  bb.forward_features = [raw](const nn::Variable& x) {
    return raw->ForwardFeatures(x);
  };
  bb.forward_logits = [raw](const nn::Variable& x) { return raw->Forward(x); };
  bb.feature_dim = raw->feature_dim();
  return bb;
}

namespace {

// Shared epoch loop for pre-training and adaptation; `ctx` enables the
// per-batch adapter bindings and switches the backbone to eval mode.
Result<TrainStats> RunTraining(Backbone& backbone,
                               const data::MultiTaskDataset& train,
                               const TrainOptions& options, AdaptContext* ctx) {
  if (train.size() == 0) {
    return Status::InvalidArgument("training dataset is empty");
  }
  if (options.epochs < 1 || options.batch_size < 1) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }

  const bool adapting = ctx != nullptr;
  // Pre-training uses train mode (live batch-norm); adaptation freezes the
  // backbone statistics by staying in eval mode.
  backbone.module->SetTraining(!adapting);

  std::vector<nn::Variable> trainable;
  for (auto* v : backbone.module->TrainableParameters()) trainable.push_back(*v);
  if (trainable.empty()) {
    return Status::FailedPrecondition("no trainable parameters");
  }

  optim::AdamOptions adam_opts;
  adam_opts.lr = options.lr;
  adam_opts.weight_decay = options.weight_decay;
  optim::Adam optimizer(trainable, adam_opts);

  data::DataLoader loader(train, options.batch_size, /*shuffle=*/true,
                          options.seed);

  // Step-scoped arena: one batch's whole graph — forward intermediates,
  // saved tensors, backward scratch — lives in generation-tagged blocks
  // reclaimed wholesale by NextGeneration() at the next batch boundary.
  // Everything the loop reads after the step either lives on the heap
  // already (loss/logits are read before the bump) or is pinned there by
  // Backward (leaf gradients, for the optimizer).
  autograd::WorkspaceArena step_arena;
  autograd::RuntimeContext arena_ctx;
  std::optional<autograd::RuntimeContextScope> arena_scope;
  if (options.step_arena) {
    arena_ctx.set_profiling(autograd::RuntimeContext::Current().profiling());
    arena_ctx.set_arena(&step_arena);
    arena_ctx.set_arena_serves_grad(true);
    arena_scope.emplace(&arena_ctx);
  }

  TrainStats stats;
  Timer timer;
  double last_acc = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double loss_acc = 0.0;
    int64_t seen = 0, correct = 0;
    for (int64_t b = 0; b < loader.num_batches(); ++b) {
      if (options.step_arena) step_arena.NextGeneration();
      data::Batch batch = loader.GetBatch(b);
      nn::Variable x(batch.images, /*requires_grad=*/false);

      if (adapting) {
        if (ctx->extractor != nullptr) {
          Tensor feats = ctx->extractor->Extract(batch.images);
          ctx->injection.BindFeatures(
              nn::Variable(std::move(feats), /*requires_grad=*/false));
        }
        ctx->injection.BindTaskIds(batch.task_ids);
      }

      nn::Variable logits = backbone.forward_logits(x);
      nn::Variable loss = autograd::SoftmaxCrossEntropy(logits, batch.labels);

      if (epoch == 0 && b == 0) {
        // One step's graph is representative of them all (same architecture,
        // same batch shape); collect it once while it is still alive.
        stats.graph = autograd::CollectGraphStats(loss);
        if (options.verbose) {
          ML_LOG(Info) << (adapting ? "adapt" : "pretrain") << " graph "
                       << stats.graph.ToString();
        }
      }

      backbone.module->ZeroGrad();
      ML_RETURN_IF_ERROR(autograd::Backward(loss));
      if (options.clip_norm > 0) {
        optim::ClipGradNorm(trainable, options.clip_norm);
      }
      optimizer.Step();

      loss_acc += loss.value().flat(0) * static_cast<double>(batch.size());
      seen += batch.size();
      const auto preds = metalora::ArgmaxRows(logits.value());
      for (size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == batch.labels[i]) ++correct;
      }
    }
    loader.Reshuffle();
    const double epoch_loss = loss_acc / static_cast<double>(seen);
    last_acc = static_cast<double>(correct) / static_cast<double>(seen);
    stats.epoch_losses.push_back(epoch_loss);
    if (options.verbose) {
      ML_LOG(Info) << (adapting ? "adapt" : "pretrain") << " epoch "
                   << (epoch + 1) << "/" << options.epochs << " loss "
                   << epoch_loss << " acc " << last_acc;
    }
  }
  stats.final_train_accuracy = last_acc;
  stats.seconds = timer.Seconds();
  if (options.step_arena) {
    stats.arena_hit_rate = arena_ctx.ArenaHitRate();
    stats.arena_pin_count = arena_ctx.pin_count();
    stats.arena_peak_bytes = step_arena.peak_bytes();
  }
  return stats;
}

}  // namespace

Result<TrainStats> PretrainBackbone(Backbone& backbone,
                                    const data::MultiTaskDataset& train,
                                    const TrainOptions& options) {
  return RunTraining(backbone, train, options, nullptr);
}

Result<TrainStats> AdaptModel(Backbone& backbone,
                              const data::MultiTaskDataset& train,
                              const TrainOptions& options, AdaptContext* ctx) {
  if (ctx == nullptr) {
    return Status::InvalidArgument("AdaptModel requires a context");
  }
  return RunTraining(backbone, train, options, ctx);
}

Tensor ExtractDatasetFeatures(Backbone& backbone,
                              const data::MultiTaskDataset& ds,
                              int64_t batch_size, AdaptContext* ctx) {
  ML_CHECK_GT(ds.size(), 0);
  backbone.module->SetTraining(false);
  Tensor out{Shape{ds.size(), backbone.feature_dim}};
  data::DataLoader loader(ds, batch_size, /*shuffle=*/false, /*seed=*/0);

  // Dataset-scale inference: run every batch on the arena fast path. One
  // Reset per batch reclaims all intermediates; the feature rows are copied
  // into `out` (heap) before the next batch reuses the space.
  autograd::WorkspaceArena arena;
  autograd::RuntimeContext rctx;
  rctx.set_grad_enabled(false);
  rctx.set_arena(&arena);
  autograd::RuntimeContextScope scope(&rctx);

  int64_t row = 0;
  for (int64_t b = 0; b < loader.num_batches(); ++b) {
    arena.NextGeneration();
    data::Batch batch = loader.GetBatch(b);
    if (ctx != nullptr) {
      if (ctx->extractor != nullptr) {
        Tensor feats = ctx->extractor->Extract(batch.images);
        ctx->injection.BindFeatures(
            nn::Variable(std::move(feats), /*requires_grad=*/false));
      }
      ctx->injection.BindTaskIds(batch.task_ids);
    }
    nn::Variable f = backbone.forward_features(
        nn::Variable(batch.images, /*requires_grad=*/false));
    std::memcpy(out.data() + row * backbone.feature_dim, f.value().data(),
                sizeof(float) *
                    static_cast<size_t>(batch.size() * backbone.feature_dim));
    row += batch.size();
  }
  return out;
}

}  // namespace eval
}  // namespace metalora
