#include "autograd/variable.h"

#include <atomic>

#include "autograd/op.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace autograd {

namespace {
// Starts at 1 so 0 can mean "never stamped" in cache entries.
std::atomic<uint64_t> g_parameter_version{1};
}  // namespace

uint64_t GlobalParameterVersion() {
  return g_parameter_version.load(std::memory_order_acquire);
}

void BumpParameterVersion() {
  g_parameter_version.fetch_add(1, std::memory_order_acq_rel);
}

Variable::Variable(Tensor value, bool requires_grad) {
  impl_ = std::make_shared<VariableImpl>();
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  ML_CHECK(impl_ != nullptr) << "value() on undefined Variable";
  return impl_->value;
}

Tensor& Variable::mutable_value() {
  ML_CHECK(impl_ != nullptr) << "mutable_value() on undefined Variable";
  return impl_->value;
}

const Tensor& Variable::grad() const {
  ML_CHECK(impl_ != nullptr);
  return impl_->grad;
}

Tensor& Variable::mutable_grad() {
  ML_CHECK(impl_ != nullptr);
  return impl_->grad;
}

void Variable::ZeroGrad() {
  ML_CHECK(impl_ != nullptr);
  impl_->grad = Tensor();
}

void Variable::AccumulateGrad(const Tensor& g) {
  ML_CHECK(impl_ != nullptr);
  ML_CHECK(g.shape() == impl_->value.shape())
      << "gradient shape " << g.shape().ToString() << " != value shape "
      << impl_->value.shape().ToString();
  if (!impl_->grad.defined()) {
    impl_->grad = g.Clone();
  } else {
    AddInPlace(impl_->grad, g);
  }
}

void Variable::set_requires_grad(bool requires_grad) {
  ML_CHECK(impl_ != nullptr);
  ML_CHECK(impl_->producer == nullptr)
      << "set_requires_grad on a non-leaf Variable";
  impl_->requires_grad = requires_grad;
}

Variable Variable::Detach() const {
  ML_CHECK(impl_ != nullptr);
  return Variable(impl_->value, /*requires_grad=*/false);
}

const std::shared_ptr<Op>& Variable::producer() const {
  static const std::shared_ptr<Op> kNull;
  return impl_ ? impl_->producer : kNull;
}

Variable Variable::FromOp(Tensor value, std::shared_ptr<Op> producer) {
  Variable v(std::move(value), /*requires_grad=*/true);
  v.impl_->producer = std::move(producer);
  return v;
}

bool AnyRequiresGrad(const std::vector<Variable>& inputs) {
  if (!GradEnabled()) return false;
  for (const auto& v : inputs) {
    if (v.requires_grad()) return true;
  }
  return false;
}

}  // namespace autograd
}  // namespace metalora
