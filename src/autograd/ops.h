// Differentiable operations over Variables.
//
// Every function here runs a forward kernel and, when gradient recording is
// active, attaches a backward closure. Gradient correctness of each op is
// covered by finite-difference property tests (tests/autograd_gradcheck_test).
#ifndef METALORA_AUTOGRAD_OPS_H_
#define METALORA_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"
#include "tensor/conv_ops.h"

namespace metalora {
namespace autograd {

// --------------------------------------------------------------------------
// Elementwise arithmetic (ops_basic.cc).
// --------------------------------------------------------------------------

/// c = a + b (same shape).
Variable Add(const Variable& a, const Variable& b);
/// c = a - b.
Variable Sub(const Variable& a, const Variable& b);
/// c = a ⊙ b (Hadamard). Gradient flows to both inputs.
Variable Mul(const Variable& a, const Variable& b);
/// c = a * s.
Variable Scale(const Variable& a, float s);
/// c = a + s.
Variable AddScalar(const Variable& a, float s);
/// c = -a.
Variable Neg(const Variable& a);

/// out[i,j] = a[i,j] + bias[j]; a is [N,C], bias is [C].
Variable AddRowBroadcast(const Variable& a, const Variable& bias);

/// out[i,j] = a[i,j] * row[j]; a is [N,C], row is [C]. Gradient w.r.t. row is
/// Σ_i g[i,j]·a[i,j]. This is the pooled MetaLoRA-CP seed application.
Variable MulRowBroadcast(const Variable& a, const Variable& row);

/// out[n,c,h,w] = a[n,c,h,w] * s[n,c]; per-sample channel scaling — the
/// faithful per-input MetaLoRA-CP application for conv features.
Variable ScaleChannels(const Variable& a, const Variable& s);

/// out[i, ...] = a[i, ...] * s[i]; per-row scaling with s of shape [N].
/// Used for per-sample masking (Multi-LoRA routing).
Variable ScaleRows(const Variable& a, const Variable& s);

/// c = a * s where s is a trainable scalar Variable (numel 1). Gradient
/// w.r.t. s is Σ g ⊙ a. Used for learnable branch scales (Multi-LoRA).
Variable MulScalarVar(const Variable& a, const Variable& s);

/// Repeats each row of a [N, ...] tensor `k` times consecutively:
/// out[i*k + j] = a[i]. Backward sums the k replicas. Used to broadcast a
/// per-sample MetaLoRA seed over the per-token rows of a flattened
/// [N*S, D] activation (MLP-Mixer layers).
Variable RepeatRowsInterleaved(const Variable& a, int64_t k);

// Activations.
Variable Relu(const Variable& a);
/// tanh-approximation GELU (as in BERT/Mixer reference code).
Variable Gelu(const Variable& a);
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Square(const Variable& a);
Variable Exp(const Variable& a);

/// Inverted dropout; identity when !training or p == 0.
Variable Dropout(const Variable& a, float p, bool training, Rng& rng);

// Reductions.
/// Scalar sum of all elements.
Variable SumAll(const Variable& a);
/// Scalar mean of all elements.
Variable MeanAll(const Variable& a);

// --------------------------------------------------------------------------
// Linear algebra (ops_matmul.cc).
// --------------------------------------------------------------------------

/// C[n,m] = A[n,k] · B[k,m].
Variable Matmul(const Variable& a, const Variable& b);

/// Fused affine map: y[n,o] = x[n,i] · Wᵀ[i,o] + b[o]. W is stored [O, I]
/// (PyTorch convention); pass an undefined bias Variable for no bias.
Variable Linear(const Variable& x, const Variable& weight,
                const Variable& bias);

/// C[n,p,s] = A[n,p,q] · B[n,q,s] (batched matmul, shared batch dim).
Variable BatchedMatmul(const Variable& a, const Variable& b);

/// Per-sample pointwise (1×1) convolution with per-sample weights:
///   y[n,o,h,w] = Σ_q w[n,o,q] · x[n,q,h,w]
/// This is the conv-MetaLoRA integration step where the generated core makes
/// the recovery weights input-dependent.
Variable PerSamplePointwiseConv(const Variable& x, const Variable& w);

// --------------------------------------------------------------------------
// Shape manipulation (ops_shape.cc).
// --------------------------------------------------------------------------

/// Reshape preserving numel (shares the value buffer).
Variable Reshape(const Variable& a, Shape shape);
/// Flattens [N, ...] to [N, rest].
Variable Flatten2D(const Variable& a);
/// General dimension permutation.
Variable Permute(const Variable& a, const std::vector<int>& perm);
/// Concatenation along dim 0.
Variable ConcatRows(const std::vector<Variable>& parts);

// --------------------------------------------------------------------------
// Convolution & pooling (ops_conv.cc).
// --------------------------------------------------------------------------

/// 2-D convolution, NCHW; weight [O, C, Kh, Kw]; bias [O] or undefined.
Variable Conv2d(const Variable& x, const Variable& weight,
                const Variable& bias, const ConvGeom& geom);

Variable MaxPool2d(const Variable& x, const ConvGeom& geom);
Variable AvgPool2d(const Variable& x, const ConvGeom& geom);
/// [N,C,H,W] -> [N,C].
Variable GlobalAvgPool(const Variable& x);

// --------------------------------------------------------------------------
// Normalization (ops_norm.cc).
// --------------------------------------------------------------------------

/// Batch normalization over (N, H, W) per channel. In training mode uses
/// batch statistics and updates running stats in place; in eval mode uses the
/// provided running stats. gamma/beta are [C].
Variable BatchNorm2d(const Variable& x, const Variable& gamma,
                     const Variable& beta, Tensor& running_mean,
                     Tensor& running_var, bool training, float momentum,
                     float eps);

/// Layer normalization over the last dimension; gamma/beta are [C].
Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps);

// --------------------------------------------------------------------------
// Losses (ops_loss.cc).
// --------------------------------------------------------------------------

/// Row-wise softmax of logits [N, C].
Variable Softmax(const Variable& logits);

/// Softmax over the last dimension of a tensor of any rank (attention
/// weights): every slice along the trailing axis sums to 1.
Variable SoftmaxLastDim(const Variable& logits);

/// Mean cross-entropy with integer labels; logits [N, C]. Numerically stable
/// (log-sum-exp); returns a scalar.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int64_t>& labels);

/// Mean squared error between `pred` and constant `target`; scalar.
Variable MseLoss(const Variable& pred, const Tensor& target);

}  // namespace autograd
}  // namespace metalora

#endif  // METALORA_AUTOGRAD_OPS_H_
