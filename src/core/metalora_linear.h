// MetaLoRA for linear layers (paper §III.C).
//
// CP variant (Eq. 6): ΔW = Λ ×₁ A ×₂ B ×₃ c, with the seed c generated per
// input by the mapping net. Because ΔW enters the layer as x·ΔWᵀ, the
// per-sample update factorizes exactly as (x Aᵀ) ⊙ c → ·Bᵀ — the adapter
// never materializes a per-sample weight matrix (see DESIGN.md).
//
// TR variant (Eq. 7): ΔW = Σ_{r0,r1,r2} A[r0,·,r1]·B[r1,·,r2]·C[r2,r0] with
// the ring core C generated per input; applied through batched bond
// contractions.
#ifndef METALORA_CORE_METALORA_LINEAR_H_
#define METALORA_CORE_METALORA_LINEAR_H_

#include <memory>

#include "core/adapter_config.h"
#include "core/conditioning_cache.h"
#include "core/mapping_net.h"
#include "nn/linear.h"

namespace metalora {
namespace core {

class MetaLoraCpLinear : public Adapter {
 public:
  MetaLoraCpLinear(std::unique_ptr<nn::Linear> base,
                   const AdapterOptions& options);

  /// Requires SetFeatures(features) earlier in the same batch.
  Variable Forward(const Variable& x) override;

  int64_t AdapterParamCount() const override;

  /// Materializes this sample's ΔW = A·diag(c)·B (analysis/tests only).
  Tensor DeltaWeightFor(const Tensor& seed_c) const;

  MappingNet* mapping_net() { return mapping_; }

  /// Seed cache consulted by no-grad forwards (see conditioning_cache.h).
  ConditioningCache* conditioning_cache() override { return &cache_; }

 private:
  nn::Linear* base_;
  MappingNet* mapping_;
  Variable lora_a_;  // [R, I] (paper's A^{I×R} transposed into Linear layout)
  Variable lora_b_;  // [O, R] (paper's B^{R×O} transposed)
  float scaling_;
  ConditioningCache cache_;
  uint64_t cache_salt_ = NextAdapterCacheSalt();
};

class MetaLoraTrLinear : public Adapter {
 public:
  MetaLoraTrLinear(std::unique_ptr<nn::Linear> base,
                   const AdapterOptions& options);

  Variable Forward(const Variable& x) override;

  int64_t AdapterParamCount() const override;

  /// Materializes ΔW for one generated core C [R, R] via tn::TrMatrix
  /// (analysis/tests only).
  Tensor DeltaWeightFor(const Tensor& seed_core) const;

  MappingNet* mapping_net() { return mapping_; }

  /// Seed + recovery-weight cache consulted by no-grad forwards.
  ConditioningCache* conditioning_cache() override { return &cache_; }

 private:
  nn::Linear* base_;
  MappingNet* mapping_;
  Variable core_a_;  // [R, I, R]
  Variable core_b_;  // [R, O, R]
  float scaling_;
  ConditioningCache cache_;
  uint64_t cache_salt_ = NextAdapterCacheSalt();
};

}  // namespace core
}  // namespace metalora

#endif  // METALORA_CORE_METALORA_LINEAR_H_
