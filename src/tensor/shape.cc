#include "tensor/shape.h"

#include "common/check.h"

namespace metalora {

int64_t Shape::dim(int i) const {
  int r = rank();
  if (i < 0) i += r;
  ML_CHECK(i >= 0 && i < r) << "dim index " << i << " out of range for rank "
                            << r;
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    ML_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size());
  int64_t acc = 1;
  for (int i = rank() - 1; i >= 0; --i) {
    strides[static_cast<size_t>(i)] = acc;
    acc *= dims_[static_cast<size_t>(i)];
  }
  return strides;
}

std::string Shape::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace metalora
