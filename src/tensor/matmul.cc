#include "tensor/matmul.h"

#include "tensor/gemm.h"

namespace metalora {

// All four layouts route through the packed GEMM engine (tensor/gemm.h);
// transposition is absorbed when the engine packs its panels, so none of
// these entry points materializes a transpose or carries its own loop
// nest.

void MatmulAccumulateRaw(const float* a, const float* b, float* c, int64_t n,
                         int64_t k, int64_t m) {
  GemmPacked(a, /*trans_a=*/false, b, /*trans_b=*/false, c, n, k, m,
             /*accumulate=*/true);
}

void MatmulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  ML_CHECK_EQ(a.rank(), 2);
  ML_CHECK_EQ(b.rank(), 2);
  ML_CHECK_EQ(a.dim(1), b.dim(0))
      << "Matmul: " << a.shape().ToString() << " x " << b.shape().ToString();
  const int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  ML_CHECK((out->shape() == Shape{n, m}));
  GemmPacked(a.data(), false, b.data(), false, out->data(), n, k, m,
             /*accumulate=*/true);
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  Tensor out{Shape{a.dim(0), b.dim(1)}};
  MatmulInto(a, b, &out);
  return out;
}

void MatmulTransAInto(const Tensor& a, const Tensor& b, Tensor* out) {
  // C[n,m] = sum_p A[p,n] * B[p,m]. Overwrites `out`.
  ML_CHECK_EQ(a.rank(), 2);
  ML_CHECK_EQ(b.rank(), 2);
  ML_CHECK_EQ(a.dim(0), b.dim(0))
      << "MatmulTransA: " << a.shape().ToString() << " x "
      << b.shape().ToString();
  const int64_t k = a.dim(0), n = a.dim(1), m = b.dim(1);
  ML_CHECK((out->shape() == Shape{n, m}));
  GemmPacked(a.data(), /*trans_a=*/true, b.data(), false, out->data(), n, k,
             m, /*accumulate=*/false);
}

Tensor MatmulTransA(const Tensor& a, const Tensor& b) {
  Tensor out{Shape{a.dim(1), b.dim(1)}};
  MatmulTransAInto(a, b, &out);
  return out;
}

void MatmulTransBInto(const Tensor& a, const Tensor& b, Tensor* out) {
  // C[n,m] = A[n,k] · Bᵀ with B stored [m,k]. Overwrites `out`.
  ML_CHECK_EQ(a.rank(), 2);
  ML_CHECK_EQ(b.rank(), 2);
  ML_CHECK_EQ(a.dim(1), b.dim(1))
      << "MatmulTransB: " << a.shape().ToString() << " x "
      << b.shape().ToString();
  const int64_t n = a.dim(0), k = a.dim(1), m = b.dim(0);
  ML_CHECK((out->shape() == Shape{n, m}));
  GemmPacked(a.data(), false, b.data(), /*trans_b=*/true, out->data(), n, k,
             m, /*accumulate=*/false);
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b) {
  Tensor out{Shape{a.dim(0), b.dim(0)}};
  MatmulTransBInto(a, b, &out);
  return out;
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  ML_CHECK_EQ(a.rank(), 2);
  ML_CHECK_EQ(x.rank(), 1);
  ML_CHECK_EQ(a.dim(1), x.dim(0));
  const int64_t n = a.dim(0), k = a.dim(1);
  Tensor out{Shape{n}};
  GemmPacked(a.data(), false, x.data(), false, out.data(), n, k, /*m=*/1,
             /*accumulate=*/false);
  return out;
}

}  // namespace metalora
