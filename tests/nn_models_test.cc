#include <gtest/gtest.h>

#include "autograd/graph.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/mlp_mixer.h"
#include "nn/resnet.h"
#include "optim/adam.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace nn {
namespace {

ResNetConfig SmallResNet() {
  ResNetConfig c;
  c.base_width = 4;
  c.blocks_per_stage = 1;
  c.num_classes = 3;
  c.seed = 5;
  return c;
}

MlpMixerConfig SmallMixer() {
  MlpMixerConfig c;
  c.image_size = 16;
  c.patch_size = 4;
  c.hidden_dim = 16;
  c.token_mlp_dim = 8;
  c.channel_mlp_dim = 32;
  c.num_blocks = 2;
  c.num_classes = 3;
  c.seed = 5;
  return c;
}

TEST(ResNetTest, ForwardShapes) {
  ResNet net(SmallResNet());
  Variable x(Tensor::Ones(Shape{2, 3, 16, 16}), false);
  Variable feats = net.ForwardFeatures(x);
  EXPECT_EQ(feats.shape(), Shape({2, net.feature_dim()}));
  EXPECT_EQ(net.feature_dim(), 16);  // 4 * base_width
  Variable logits = net.Forward(x);
  EXPECT_EQ(logits.shape(), Shape({2, 3}));
}

TEST(ResNetTest, DifferentSeedsGiveDifferentWeights) {
  ResNetConfig a = SmallResNet(), b = SmallResNet();
  b.seed = 99;
  ResNet na(a), nb(b);
  auto sa = na.StateDict(), sb = nb.StateDict();
  EXPECT_FALSE(AllClose(sa.at("stem/weight"), sb.at("stem/weight")));
}

TEST(ResNetTest, DeterministicConstruction) {
  ResNet a(SmallResNet()), b(SmallResNet());
  EXPECT_TRUE(AllClose(a.StateDict().at("stem/weight"),
                       b.StateDict().at("stem/weight")));
}

TEST(ResNetTest, EvalForwardIsDeterministic) {
  ResNet net(SmallResNet());
  net.SetTraining(false);
  Rng rng(1);
  Tensor x = RandomNormal(Shape{2, 3, 16, 16}, rng);
  autograd::NoGradGuard g;
  Tensor y1 = net.Forward(Variable(x, false)).value();
  Tensor y2 = net.Forward(Variable(x, false)).value();
  EXPECT_TRUE(AllClose(y1, y2));
}

TEST(ResNetTest, GradientsReachEveryParameter) {
  ResNet net(SmallResNet());
  net.SetTraining(true);
  Rng rng(2);
  Variable x(RandomNormal(Shape{4, 3, 16, 16}, rng), false);
  Variable loss = autograd::SoftmaxCrossEntropy(net.Forward(x), {0, 1, 2, 0});
  ASSERT_TRUE(autograd::Backward(loss).ok());
  for (auto& np : net.NamedParameters()) {
    EXPECT_TRUE(np.variable->grad().defined()) << np.name;
  }
}

TEST(ResNetTest, MultipleBlocksPerStage) {
  ResNetConfig c = SmallResNet();
  c.blocks_per_stage = 2;
  ResNet net(c);
  Variable x(Tensor::Ones(Shape{1, 3, 16, 16}), false);
  EXPECT_EQ(net.Forward(x).shape(), Shape({1, 3}));
}

TEST(MixerTest, ForwardShapes) {
  MlpMixer net(SmallMixer());
  EXPECT_EQ(net.num_tokens(), 16);  // (16/4)²
  Variable x(Tensor::Ones(Shape{2, 3, 16, 16}), false);
  Variable feats = net.ForwardFeatures(x);
  EXPECT_EQ(feats.shape(), Shape({2, 16}));
  EXPECT_EQ(net.Forward(x).shape(), Shape({2, 3}));
}

TEST(MixerTest, PatchSizeMustDivide) {
  MlpMixerConfig c = SmallMixer();
  c.patch_size = 5;
  EXPECT_DEATH(MlpMixer{c}, "divide");
}

TEST(MixerTest, GradientsReachEveryParameter) {
  MlpMixer net(SmallMixer());
  Rng rng(3);
  Variable x(RandomNormal(Shape{2, 3, 16, 16}, rng), false);
  Variable loss = autograd::SoftmaxCrossEntropy(net.Forward(x), {0, 2});
  ASSERT_TRUE(autograd::Backward(loss).ok());
  for (auto& np : net.NamedParameters()) {
    EXPECT_TRUE(np.variable->grad().defined()) << np.name;
  }
}

// Integration: both backbones must be able to fit a trivially separable
// 2-class problem in a few Adam steps.
template <typename Net>
void TrainToSeparate(Net& net) {
  Rng rng(4);
  // Class 0: dark images; class 1: bright images.
  const int64_t n = 16;
  Tensor x{Shape{n, 3, 16, 16}};
  std::vector<int64_t> labels(n);
  for (int64_t i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % 2;
    const float base = (i % 2 == 0) ? 0.1f : 0.9f;
    for (int64_t k = 0; k < 3 * 16 * 16; ++k) {
      net.SetTraining(true);
      x.flat(i * 3 * 16 * 16 + k) =
          base + static_cast<float>(rng.Normal(0.0, 0.05));
    }
  }
  std::vector<autograd::Variable> params;
  for (auto* p : net.TrainableParameters()) params.push_back(*p);
  optim::AdamOptions opts;
  opts.lr = 5e-3;
  optim::Adam adam(params, opts);
  float final_loss = 1e9f;
  for (int step = 0; step < 30; ++step) {
    net.ZeroGrad();
    autograd::Variable logits = net.Forward(autograd::Variable(x, false));
    autograd::Variable loss = autograd::SoftmaxCrossEntropy(logits, labels);
    ASSERT_TRUE(autograd::Backward(loss).ok());
    adam.Step();
    final_loss = loss.value().flat(0);
  }
  EXPECT_LT(final_loss, 0.3f);
}

TEST(ModelTrainingTest, ResNetFitsSeparableData) {
  ResNetConfig c = SmallResNet();
  c.num_classes = 2;
  ResNet net(c);
  TrainToSeparate(net);
}

TEST(ModelTrainingTest, MixerFitsSeparableData) {
  MlpMixerConfig c = SmallMixer();
  c.num_classes = 2;
  MlpMixer net(c);
  TrainToSeparate(net);
}

}  // namespace
}  // namespace nn
}  // namespace metalora
