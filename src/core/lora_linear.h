// Static LoRA for linear layers: y = base(x) + (alpha/R) · x Aᵀ Bᵀ.
//
// A ∈ R^{R×I} is Gaussian-initialized and B ∈ R^{O×R} is zero-initialized so
// the adapted model starts exactly at the pre-trained point (Hu et al.).
#ifndef METALORA_CORE_LORA_LINEAR_H_
#define METALORA_CORE_LORA_LINEAR_H_

#include <memory>

#include "core/adapter_config.h"
#include "nn/linear.h"

namespace metalora {
namespace core {

class LoraLinear : public Adapter {
 public:
  /// Takes ownership of the (frozen) base layer.
  LoraLinear(std::unique_ptr<nn::Linear> base, const AdapterOptions& options);

  Variable Forward(const Variable& x) override;

  int64_t AdapterParamCount() const override;

  /// Folds the low-rank update into the base weight (inference fast path).
  /// Forward then skips the adapter branch until Unmerge().
  void Merge();
  void Unmerge();
  bool merged() const { return merged_; }

  /// The materialized update ΔW = (alpha/R)·B·A, shape [O, I].
  Tensor DeltaWeight() const;

  nn::Linear* base() { return base_; }

 private:
  nn::Linear* base_;
  Variable lora_a_;  // [R, I]
  Variable lora_b_;  // [O, R]
  float scaling_;
  bool merged_ = false;
};

}  // namespace core
}  // namespace metalora

#endif  // METALORA_CORE_LORA_LINEAR_H_
