// Module: the base class of all neural-network layers and models.
//
// A Module owns named parameters (leaf Variables), named buffers
// (non-trainable tensors such as BatchNorm running stats), and named child
// modules. Traversal, freezing, parameter counting, and checkpointing all
// operate on the recursive registry with "/"-joined names — the adapter
// injector in src/core relies on these invariants.
#ifndef METALORA_NN_MODULE_H_
#define METALORA_NN_MODULE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/result.h"
#include "common/status.h"

namespace metalora {
namespace nn {

using autograd::Variable;

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the layer output. Modules are callable on one Variable; models
  /// needing extra context (e.g. generated seeds) receive it through
  /// dedicated setters before Forward.
  virtual Variable Forward(const Variable& x) = 0;

  const std::string& name() const { return name_; }

  // --- Registry -----------------------------------------------------------

  /// Registers a trainable parameter initialized with `init`. Returns a
  /// stable reference (Variables share state across copies).
  Variable& RegisterParameter(const std::string& name, Tensor init,
                              bool trainable = true);

  /// Registers a non-trainable buffer (running stats etc.); the module keeps
  /// ownership, checkpointing includes it.
  Tensor& RegisterBuffer(const std::string& name, Tensor init);

  /// Registers and takes ownership of a child module. Returns a typed
  /// pointer for convenience.
  template <typename M>
  M* RegisterModule(const std::string& name, std::unique_ptr<M> child) {
    M* raw = child.get();
    AddChild(name, std::move(child));
    return raw;
  }

  // --- Traversal ----------------------------------------------------------

  struct NamedParameter {
    std::string name;  // "block1/conv/weight"
    Variable* variable;
  };

  /// All parameters in the subtree, depth-first, with prefixed names.
  std::vector<NamedParameter> NamedParameters();

  /// All parameters (trainable or not) in the subtree.
  std::vector<Variable*> Parameters();

  /// Parameters with requires_grad == true.
  std::vector<Variable*> TrainableParameters();

  /// Direct child by registered name; nullptr if absent.
  Module* Child(const std::string& name);

  /// All direct children in registration order.
  std::vector<Module*> Children();

  /// Direct children with their registered names.
  std::vector<std::pair<std::string, Module*>> NamedChildren();

  /// Swaps the direct child `name` for `replacement`, returning the old
  /// module (ownership transfers both ways). Used by the adapter injector;
  /// modules must therefore resolve children by name in Forward rather than
  /// caching raw pointers across injection.
  std::unique_ptr<Module> ReplaceChild(const std::string& name,
                                       std::unique_ptr<Module> replacement);

  /// Removes and returns the direct child `name` (for wrapping it inside an
  /// adapter). Pair with AdoptChild to reinstall a module under the same
  /// name; child order moves to the end, so do structural surgery before
  /// creating optimizers.
  std::unique_ptr<Module> TakeChild(const std::string& name);

  /// Registers an externally constructed module as a direct child.
  Module* AdoptChild(const std::string& name, std::unique_ptr<Module> child);

  // --- Modes & freezing ---------------------------------------------------

  /// Propagates training mode (dropout, batch-norm) down the subtree.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Sets requires_grad on every parameter in the subtree.
  void SetTrainable(bool trainable);

  /// Clears gradients on every parameter in the subtree.
  void ZeroGrad();

  /// Number of parameters in the subtree.
  int64_t ParamCount() const;
  /// Number of parameters with requires_grad == true.
  int64_t TrainableParamCount() const;

  // --- Checkpointing ------------------------------------------------------

  /// Full state (parameters + buffers) with prefixed names.
  std::map<std::string, Tensor> StateDict() const;

  /// Loads tensors by name. Strict by construction: the state must match
  /// the module's registry exactly, or the load fails with InvalidArgument
  /// naming the offending key —
  ///   - a registered parameter or buffer missing from `state`,
  ///   - an extra tensor in `state` no parameter or buffer claims, or
  ///   - a shape mismatch (checkpoint shape vs model shape in the message).
  /// On failure the module may be partially updated (tensors preceding the
  /// offending key were already copied); callers needing all-or-nothing
  /// semantics load into a freshly constructed module and swap, which is
  /// what serve::AdapterRegistry does on its lazy-load path.
  Status LoadStateDict(const std::map<std::string, Tensor>& state);

  /// Saves / loads the state dict to a file.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

 protected:
  void AddChild(const std::string& name, std::unique_ptr<Module> child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<NamedParameter>* out);
  void CollectState(const std::string& prefix,
                    std::map<std::string, Tensor>* out) const;
  Status ApplyState(const std::string& prefix,
                    const std::map<std::string, Tensor>& state,
                    std::vector<std::string>* applied);

  std::string name_;
  bool training_ = true;
  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, std::unique_ptr<Tensor>>> buffers_;
  std::vector<std::pair<std::string, std::unique_ptr<Module>>> children_;
};

}  // namespace nn
}  // namespace metalora

#endif  // METALORA_NN_MODULE_H_
