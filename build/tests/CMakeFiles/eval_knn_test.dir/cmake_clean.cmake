file(REMOVE_RECURSE
  "CMakeFiles/eval_knn_test.dir/eval_knn_test.cc.o"
  "CMakeFiles/eval_knn_test.dir/eval_knn_test.cc.o.d"
  "eval_knn_test"
  "eval_knn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
