#include "autograd/runtime_context.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <utility>
#include <vector>

#include "common/table_printer.h"

namespace metalora {
namespace autograd {

namespace {

RuntimeContext*& CurrentContextSlot() {
  static thread_local RuntimeContext default_context;
  static thread_local RuntimeContext* current = &default_context;
  return current;
}

}  // namespace

WorkspaceArena::WorkspaceArena(int64_t initial_floats)
    : next_block_floats_(std::max<int64_t>(initial_floats, 1)) {}

Tensor WorkspaceArena::AllocateImpl(Shape shape, bool zero) {
  const int64_t numel = shape.numel();
  ++alloc_count_;
  // First block with room wins; blocks stay small in count because each new
  // one doubles, so the scan is effectively O(1).
  for (Block& block : blocks_) {
    const int64_t capacity = static_cast<int64_t>(block.data->size());
    if (block.used + numel <= capacity) {
      const int64_t offset = block.used;
      block.used += numel;
      used_floats_ += numel;
      peak_floats_ = std::max(peak_floats_, used_floats_);
      ++block_hits_;
      Tensor view = Tensor::WrapBuffer(block.data, offset, std::move(shape));
      // Reused block bytes are stale; Allocate() callers assume zeroed,
      // AllocateUninitialized() callers overwrite every element themselves.
      if (zero) view.Zero();
      return view;
    }
  }
  ++block_misses_;
  const int64_t block_floats = std::max(next_block_floats_, numel);
  next_block_floats_ = block_floats * 2;
  Block block;
  block.data = std::make_shared<std::vector<float>>(
      static_cast<size_t>(block_floats), 0.0f);
  block.used = numel;
  capacity_floats_ += block_floats;
  used_floats_ += numel;
  peak_floats_ = std::max(peak_floats_, used_floats_);
  blocks_.push_back(block);
  // Fresh blocks are value-initialized, so no explicit zeroing is needed.
  return Tensor::WrapBuffer(block.data, 0, std::move(shape));
}

Tensor WorkspaceArena::Allocate(Shape shape) {
  return AllocateImpl(std::move(shape), /*zero=*/true);
}

Tensor WorkspaceArena::AllocateUninitialized(Shape shape) {
  return AllocateImpl(std::move(shape), /*zero=*/false);
}

void WorkspaceArena::Reset() {
  for (Block& block : blocks_) block.used = 0;
  used_floats_ = 0;
}

RuntimeContext& RuntimeContext::Current() { return *CurrentContextSlot(); }

RuntimeContextScope::RuntimeContextScope(RuntimeContext* ctx)
    : prev_(CurrentContextSlot()) {
  ML_CHECK(ctx != nullptr);
  CurrentContextSlot() = ctx;
}

RuntimeContextScope::~RuntimeContextScope() { CurrentContextSlot() = prev_; }

namespace {
int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ProfileScope::ProfileScope(RuntimeContext& ctx, const char* name)
    : ctx_(ctx), name_(name), enabled_(ctx.profiling()) {
  if (enabled_) start_nanos_ = MonotonicNanos();
}

ProfileScope::~ProfileScope() {
  if (!enabled_) return;
  ctx_.RecordForward(name_, output_bytes_, MonotonicNanos() - start_nanos_);
}

namespace {

// One line of per-precision eligible-GEMM dispatch counts. Printed
// whenever any GEMM ran, profiling or not — the counters are always on.
void PrintPrecisionTrailer(const RuntimeContext& ctx, std::ostream& os) {
  int64_t total = 0;
  for (int i = 0; i < kNumOpPrecisions; ++i) {
    total += ctx.gemm_dispatch(static_cast<OpPrecision>(i));
  }
  if (total == 0) return;
  os << "gemm dispatch:";
  for (int i = 0; i < kNumOpPrecisions; ++i) {
    const OpPrecision p = static_cast<OpPrecision>(i);
    os << " " << OpPrecisionName(p) << " " << ctx.gemm_dispatch(p);
  }
  os << "\n";
}

// Allocator trailer under the per-op table: arena vs heap service counts,
// leaf pins, and the arena's own block behavior when one is installed.
void PrintArenaTrailer(const RuntimeContext& ctx, std::ostream& os) {
  PrintPrecisionTrailer(ctx, os);
  const int64_t total = ctx.arena_served() + ctx.heap_served();
  if (total == 0 && ctx.pin_count() == 0) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ctx.ArenaHitRate());
  os << "allocator: arena " << ctx.arena_served() << " / heap "
     << ctx.heap_served() << " (hit rate " << buf << "), pins "
     << ctx.pin_count() << " (" << ctx.pin_bytes() << " B)\n";
  const WorkspaceArena* arena = ctx.arena();
  if (arena != nullptr) {
    os << "arena: generation " << arena->generation() << ", block hits "
       << arena->block_hits() << ", block misses " << arena->block_misses()
       << ", capacity " << arena->capacity_bytes() << " B, peak "
       << arena->peak_bytes() << " B\n";
  }
}

}  // namespace

void PrintOpProfileTable(const RuntimeContext& ctx, std::ostream& os) {
  const auto& profiles = ctx.op_profiles();
  if (profiles.empty()) {
    os << "(no op profiles recorded — was set_profiling(true) active?)\n";
    PrintArenaTrailer(ctx, os);
    return;
  }
  std::vector<std::pair<std::string, OpProfile>> rows(profiles.begin(),
                                                      profiles.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.nanos > b.second.nanos;
  });
  TablePrinter table("op profile");
  table.SetHeader({"op", "calls", "total ms", "us/call", "out MiB"});
  char buf[32];
  for (const auto& [name, p] : rows) {
    std::vector<std::string> row;
    row.push_back(name);
    row.push_back(std::to_string(p.calls));
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(p.nanos) / 1e6);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  p.calls > 0
                      ? static_cast<double>(p.nanos) / 1e3 /
                            static_cast<double>(p.calls)
                      : 0.0);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  static_cast<double>(p.output_bytes) / (1024.0 * 1024.0));
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print(os);
  PrintArenaTrailer(ctx, os);
}

bool GradEnabled() { return RuntimeContext::Current().grad_enabled(); }

NoGradGuard::NoGradGuard()
    : ctx_(&RuntimeContext::Current()), prev_(ctx_->grad_enabled()) {
  ctx_->set_grad_enabled(false);
}

NoGradGuard::~NoGradGuard() { ctx_->set_grad_enabled(prev_); }

}  // namespace autograd
}  // namespace metalora
