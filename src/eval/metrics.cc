#include "eval/metrics.h"

#include <cmath>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace eval {

double Accuracy(const std::vector<int64_t>& predictions,
                const std::vector<int64_t>& labels) {
  ML_CHECK_EQ(predictions.size(), labels.size());
  ML_CHECK(!labels.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double LogitsAccuracy(const Tensor& logits,
                      const std::vector<int64_t>& labels) {
  return Accuracy(ArgmaxRows(logits), labels);
}

Tensor ConfusionMatrix(const std::vector<int64_t>& predictions,
                       const std::vector<int64_t>& labels,
                       int64_t num_classes) {
  ML_CHECK_EQ(predictions.size(), labels.size());
  Tensor counts{Shape{num_classes, num_classes}};
  for (size_t i = 0; i < labels.size(); ++i) {
    ML_CHECK(labels[i] >= 0 && labels[i] < num_classes);
    ML_CHECK(predictions[i] >= 0 && predictions[i] < num_classes);
    counts.flat(labels[i] * num_classes + predictions[i]) += 1.0f;
  }
  for (int64_t t = 0; t < num_classes; ++t) {
    float row_sum = 0;
    for (int64_t p = 0; p < num_classes; ++p)
      row_sum += counts.flat(t * num_classes + p);
    if (row_sum > 0) {
      for (int64_t p = 0; p < num_classes; ++p)
        counts.flat(t * num_classes + p) /= row_sum;
    }
  }
  return counts;
}

std::vector<double> PerClassAccuracy(const std::vector<int64_t>& predictions,
                                     const std::vector<int64_t>& labels,
                                     int64_t num_classes) {
  std::vector<int64_t> correct(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> total(static_cast<size_t>(num_classes), 0);
  for (size_t i = 0; i < labels.size(); ++i) {
    ++total[static_cast<size_t>(labels[i])];
    if (predictions[i] == labels[i]) ++correct[static_cast<size_t>(labels[i])];
  }
  std::vector<double> out(static_cast<size_t>(num_classes), 0.0);
  for (int64_t c = 0; c < num_classes; ++c) {
    if (total[static_cast<size_t>(c)] > 0) {
      out[static_cast<size_t>(c)] =
          static_cast<double>(correct[static_cast<size_t>(c)]) /
          static_cast<double>(total[static_cast<size_t>(c)]);
    }
  }
  return out;
}

double Mean(const std::vector<double>& v) {
  ML_CHECK(!v.empty());
  double acc = 0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mu = Mean(v);
  double acc = 0;
  for (double x : v) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

}  // namespace eval
}  // namespace metalora
