#include "data/task_suite.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace metalora {
namespace data {

std::string TaskTransform::ToString() const {
  return StrFormat(
      "invert=%d rot90=%d flip=%d brightness=%+.2f contrast=%.2f noise=%.3f",
      invert ? 1 : 0, rot90, flip_h ? 1 : 0, brightness, contrast, noise_std);
}

Tensor ApplyTransform(const Tensor& image, const TaskTransform& t, Rng& rng) {
  ML_CHECK_EQ(image.rank(), 3);
  const int64_t c = image.dim(0), h = image.dim(1), w = image.dim(2);
  Tensor out = image.Clone();
  float* po = out.data();

  // 1. Inversion.
  if (t.invert) {
    for (int64_t k = 0, n = out.numel(); k < n; ++k) po[k] = 1.0f - po[k];
  }

  // 2. Channel mixing (3-channel images only).
  if (c == 3) {
    const int64_t plane = h * w;
    for (int64_t k = 0; k < plane; ++k) {
      const float r = po[k], g = po[plane + k], b = po[2 * plane + k];
      po[k] = t.channel_mix[0][0] * r + t.channel_mix[0][1] * g +
              t.channel_mix[0][2] * b;
      po[plane + k] = t.channel_mix[1][0] * r + t.channel_mix[1][1] * g +
                      t.channel_mix[1][2] * b;
      po[2 * plane + k] = t.channel_mix[2][0] * r + t.channel_mix[2][1] * g +
                          t.channel_mix[2][2] * b;
    }
  }

  // 3. Contrast (around mid-gray) and brightness.
  for (int64_t k = 0, n = out.numel(); k < n; ++k) {
    po[k] = (po[k] - 0.5f) * t.contrast + 0.5f + t.brightness;
  }

  // 4. Geometric: rotation by quarter turns, then horizontal flip.
  if (t.rot90 % 4 != 0) {
    ML_CHECK_EQ(h, w) << "rot90 requires square images";
    Tensor rotated{out.shape()};
    float* pr = rotated.data();
    const int quarter = ((t.rot90 % 4) + 4) % 4;
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = po + ch * h * w;
      float* dst = pr + ch * h * w;
      for (int64_t y = 0; y < h; ++y) {
        for (int64_t x = 0; x < w; ++x) {
          int64_t sy = y, sx = x;
          switch (quarter) {
            case 1:
              sy = w - 1 - x;
              sx = y;
              break;
            case 2:
              sy = h - 1 - y;
              sx = w - 1 - x;
              break;
            case 3:
              sy = x;
              sx = h - 1 - y;
              break;
            default:
              break;
          }
          dst[y * w + x] = src[sy * w + sx];
        }
      }
    }
    out = rotated;
    po = out.data();
  }
  if (t.flip_h) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* plane = po + ch * h * w;
      for (int64_t y = 0; y < h; ++y) {
        for (int64_t x = 0; x < w / 2; ++x) {
          std::swap(plane[y * w + x], plane[y * w + (w - 1 - x)]);
        }
      }
    }
  }

  // 5. Per-sample noise, then clamp.
  for (int64_t k = 0, n = out.numel(); k < n; ++k) {
    float v = po[k];
    if (t.noise_std > 0.0f) {
      v += static_cast<float>(rng.Normal(0.0, t.noise_std));
    }
    po[k] = std::clamp(v, 0.0f, 1.0f);
  }
  return out;
}

TaskSuite::TaskSuite(int num_tasks, uint64_t seed) {
  ML_CHECK_GE(num_tasks, 1);
  tasks_.resize(static_cast<size_t>(num_tasks));
  // Task 0 is the identity. Later tasks draw conflicting shifts from a
  // deterministic stream; the key properties are (a) shifts visible in input
  // statistics and (b) mutually incompatible pixel-level corrections.
  Rng rng(seed ^ 0xABCDEF12345678ull);
  for (int i = 1; i < num_tasks; ++i) {
    TaskTransform& t = tasks_[static_cast<size_t>(i)];
    // Alternate inversion so tasks conflict maximally.
    t.invert = (i % 2 == 1);
    // Channel rotation: strong cyclic shift whose sign alternates so the
    // per-task corrections oppose each other.
    const float theta = static_cast<float>(rng.Uniform(0.9, 1.6)) *
                        (i % 3 == 0 ? -1.0f : 1.0f);
    const float cs = std::cos(theta), sn = std::sin(theta);
    // Rotate in the (R,G) plane, keep B mostly fixed with a small leak.
    const float leak = static_cast<float>(rng.Uniform(0.0, 0.3));
    float mix[3][3] = {{cs, -sn, leak}, {sn, cs, 0.0f}, {0.0f, leak, 1.0f}};
    for (int r = 0; r < 3; ++r)
      for (int cidx = 0; cidx < 3; ++cidx) t.channel_mix[r][cidx] = mix[r][cidx];
    // Brightness/contrast in opposing directions per task parity.
    const float b_mag = static_cast<float>(rng.Uniform(0.12, 0.28));
    t.brightness = (i % 2 == 0) ? b_mag : -b_mag;
    t.contrast = (i % 2 == 0)
                     ? static_cast<float>(rng.Uniform(0.5, 0.75))
                     : static_cast<float>(rng.Uniform(1.25, 1.55));
    t.noise_std = static_cast<float>(rng.Uniform(0.0, 0.07));
    t.rot90 = static_cast<int>(rng.UniformInt(4));
    t.flip_h = rng.Bernoulli(0.5);
  }
}

const TaskTransform& TaskSuite::task(int i) const {
  ML_CHECK(i >= 0 && i < num_tasks()) << "task index out of range: " << i;
  return tasks_[static_cast<size_t>(i)];
}

MultiTaskDataset MakeMultiTaskDataset(const SyntheticImageGenerator& gen,
                                      const TaskSuite& suite, int64_t per_task,
                                      uint64_t seed) {
  ML_CHECK_GT(per_task, 0);
  const auto& spec = gen.spec();
  const int64_t total = per_task * suite.num_tasks();
  MultiTaskDataset ds;
  ds.images = Tensor{Shape{total, spec.channels, spec.height, spec.width}};
  ds.labels.resize(static_cast<size_t>(total));
  ds.task_ids.resize(static_cast<size_t>(total));
  Rng rng(seed);
  int64_t row = 0;
  const int64_t img_size = spec.channels * spec.height * spec.width;
  for (int task = 0; task < suite.num_tasks(); ++task) {
    for (int64_t i = 0; i < per_task; ++i, ++row) {
      const int64_t y = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(gen.num_classes())));
      Tensor img = gen.Sample(y, rng);
      img = ApplyTransform(img, suite.task(task), rng);
      std::copy(img.data(), img.data() + img_size,
                ds.images.data() + row * img_size);
      ds.labels[static_cast<size_t>(row)] = y;
      ds.task_ids[static_cast<size_t>(row)] = task;
    }
  }
  return ds;
}

MultiTaskDataset MakeBaseDataset(const SyntheticImageGenerator& gen,
                                 int64_t count, uint64_t seed) {
  TaskSuite identity_only(1, seed);
  return MakeMultiTaskDataset(gen, identity_only, count, seed);
}

namespace {

MultiTaskDataset TakeRows(const MultiTaskDataset& all,
                          const std::vector<int64_t>& rows) {
  MultiTaskDataset out;
  if (rows.empty()) return out;
  const int64_t img_size = all.images.numel() / all.size();
  std::vector<int64_t> dims = all.images.shape().dims();
  dims[0] = static_cast<int64_t>(rows.size());
  out.images = Tensor{Shape(dims)};
  out.labels.reserve(rows.size());
  out.task_ids.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    std::copy(all.images.data() + r * img_size,
              all.images.data() + (r + 1) * img_size,
              out.images.data() + static_cast<int64_t>(i) * img_size);
    out.labels.push_back(all.labels[static_cast<size_t>(r)]);
    out.task_ids.push_back(all.task_ids[static_cast<size_t>(r)]);
  }
  return out;
}

}  // namespace

void SplitDataset(const MultiTaskDataset& all, double test_fraction,
                  uint64_t seed, MultiTaskDataset* train,
                  MultiTaskDataset* test) {
  ML_CHECK(train != nullptr && test != nullptr);
  ML_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<int64_t> perm(static_cast<size_t>(all.size()));
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int64_t>(i);
  Rng rng(seed ^ 0x5157EEDull);
  rng.Shuffle(perm);
  const size_t test_count =
      static_cast<size_t>(test_fraction * static_cast<double>(perm.size()));
  std::vector<int64_t> test_rows(perm.begin(),
                                 perm.begin() + static_cast<int64_t>(test_count));
  std::vector<int64_t> train_rows(perm.begin() + static_cast<int64_t>(test_count),
                                  perm.end());
  *test = TakeRows(all, test_rows);
  *train = TakeRows(all, train_rows);
}

MultiTaskDataset FilterTask(const MultiTaskDataset& all, int64_t task_id) {
  std::vector<int64_t> rows;
  for (int64_t i = 0; i < all.size(); ++i) {
    if (all.task_ids[static_cast<size_t>(i)] == task_id) rows.push_back(i);
  }
  return TakeRows(all, rows);
}

MultiTaskDataset ExcludeTask(const MultiTaskDataset& all, int64_t task_id) {
  std::vector<int64_t> rows;
  for (int64_t i = 0; i < all.size(); ++i) {
    if (all.task_ids[static_cast<size_t>(i)] != task_id) rows.push_back(i);
  }
  return TakeRows(all, rows);
}

}  // namespace data
}  // namespace metalora
