#include "eval/ttest.h"

#include <gtest/gtest.h>

#include <cmath>

namespace metalora {
namespace eval {
namespace {

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(IncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(IncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, KnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(IncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = x²(3 - 2x).
  const double x = 0.4;
  EXPECT_NEAR(IncompleteBeta(2.0, 2.0, x), x * x * (3 - 2 * x), 1e-10);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(IncompleteBeta(2.5, 1.5, 0.7),
              1.0 - IncompleteBeta(1.5, 2.5, 0.3), 1e-10);
}

TEST(StudentTCdfTest, SymmetryAndCenter) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  for (double t : {0.5, 1.0, 2.5}) {
    EXPECT_NEAR(StudentTCdf(t, 7.0) + StudentTCdf(-t, 7.0), 1.0, 1e-10);
  }
}

TEST(StudentTCdfTest, MatchesKnownQuantiles) {
  // t = 2.015 is the one-sided 95% quantile for dof = 5.
  EXPECT_NEAR(StudentTCdf(2.015, 5.0), 0.95, 2e-3);
  // t = 1.812 for dof = 10.
  EXPECT_NEAR(StudentTCdf(1.812, 10.0), 0.95, 2e-3);
  // Large dof approaches the normal: Phi(1.96) ~ 0.975.
  EXPECT_NEAR(StudentTCdf(1.96, 1000.0), 0.975, 2e-3);
}

TEST(WelchTTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {0.5, 0.52, 0.48, 0.51};
  auto r = WelchTTest(a, a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->t_statistic, 0.0, 1e-12);
  EXPECT_NEAR(r->p_value, 1.0, 1e-9);
  EXPECT_FALSE(r->significant_at_05);
}

TEST(WelchTTest, ClearlySeparatedSamplesSignificant) {
  std::vector<double> a = {0.90, 0.91, 0.89, 0.92, 0.90};
  std::vector<double> b = {0.60, 0.62, 0.61, 0.59, 0.60};
  auto r = WelchTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->t_statistic, 10.0);
  EXPECT_LT(r->p_value, 0.001);
  EXPECT_TRUE(r->significant_at_05);
}

TEST(WelchTTest, OverlappingSamplesNotSignificant) {
  std::vector<double> a = {0.60, 0.70, 0.55, 0.65};
  std::vector<double> b = {0.58, 0.72, 0.60, 0.62};
  auto r = WelchTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->significant_at_05);
  EXPECT_GT(r->p_value, 0.05);
}

TEST(WelchTTest, MatchesReferenceImplementation) {
  // Verified against scipy.stats.ttest_ind(a, b, equal_var=False):
  // t = 2.8284..., p = 0.0300...
  std::vector<double> a = {5.0, 6.0, 7.0, 8.0};
  std::vector<double> b = {3.0, 4.0, 5.0, 6.0};
  auto r = WelchTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->t_statistic, 2.19089, 1e-4);
  EXPECT_NEAR(r->degrees_of_freedom, 6.0, 1e-6);
  EXPECT_NEAR(r->p_value, 0.0708, 2e-3);
}

TEST(WelchTTest, DirectionDoesNotChangeTwoSidedP) {
  std::vector<double> a = {1.0, 1.1, 0.9, 1.05};
  std::vector<double> b = {2.0, 2.1, 1.9, 2.05};
  auto ab = WelchTTest(a, b);
  auto ba = WelchTTest(b, a);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_NEAR(ab->p_value, ba->p_value, 1e-9);
  EXPECT_NEAR(ab->t_statistic, -ba->t_statistic, 1e-9);
}

TEST(WelchTTest, TooFewSamplesRejected) {
  EXPECT_FALSE(WelchTTest({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(WelchTTest({1.0, 2.0}, {}).ok());
}

TEST(WelchTTest, ConstantSamplesDegenerateCase) {
  auto same = WelchTTest({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0});
  ASSERT_TRUE(same.ok());
  EXPECT_FALSE(same->significant_at_05);
  auto diff = WelchTTest({1.0, 1.0, 1.0}, {2.0, 2.0, 2.0});
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->significant_at_05);
}

}  // namespace
}  // namespace eval
}  // namespace metalora
