#include <algorithm>
#include <utility>
#include <vector>

#include "autograd/op.h"
#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace autograd {

namespace {

class ReshapeOp final : public Op {
 public:
  explicit ReshapeOp(Shape in_shape)
      : Op("Reshape"), in_shape_(std::move(in_shape)) {}

  std::vector<Tensor> Backward(RuntimeContext&, const Tensor& g) override {
    return {g.Reshape(in_shape_)};
  }

 private:
  Shape in_shape_;
};

class PermuteOp final : public Op {
 public:
  explicit PermuteOp(std::vector<int> inv_perm)
      : Op("Permute"), inv_perm_(std::move(inv_perm)) {}

  std::vector<Tensor> Backward(RuntimeContext& ctx, const Tensor& g) override {
    std::vector<int64_t> in_dims(inv_perm_.size());
    for (size_t i = 0; i < inv_perm_.size(); ++i) {
      in_dims[i] = g.dim(inv_perm_[i]);
    }
    Tensor ga = ctx.AllocBackwardUninit(Shape(in_dims));
    metalora::PermuteInto(g, inv_perm_, &ga);
    return {ga};
  }

 private:
  std::vector<int> inv_perm_;
};

class ConcatRowsOp final : public Op {
 public:
  ConcatRowsOp(std::vector<int64_t> row_counts, std::vector<Shape> shapes,
               int64_t row_size)
      : Op("ConcatRows"),
        row_counts_(std::move(row_counts)),
        shapes_(std::move(shapes)),
        row_size_(row_size) {}

  std::vector<Tensor> Backward(RuntimeContext& ctx, const Tensor& g) override {
    std::vector<Tensor> grads;
    const float* pg = g.data();
    for (size_t i = 0; i < row_counts_.size(); ++i) {
      Tensor gi = ctx.AllocBackwardUninit(shapes_[i]);
      const int64_t count = row_counts_[i] * row_size_;
      std::copy(pg, pg + count, gi.data());
      pg += count;
      grads.push_back(std::move(gi));
    }
    return grads;
  }

 private:
  std::vector<int64_t> row_counts_;
  std::vector<Shape> shapes_;
  int64_t row_size_;
};

}  // namespace

Variable Reshape(const Variable& a, Shape shape) {
  // The result aliases the input buffer: no allocation on any path.
  Tensor out = a.value().Reshape(shape);
  if (TraceRecorder* rec = RuntimeContext::Current().trace_recorder()) {
    // Pure alias: make sure the storage is a known buffer (a reshaped
    // parameter enters the trace here) so the coverage guard passes.
    rec->NoteAlias(a.value());
  }
  return MakeOpResult<ReshapeOp>(std::move(out), {a}, a.shape());
}

Variable Flatten2D(const Variable& a) {
  ML_CHECK_GE(a.rank(), 1);
  const int64_t n = a.dim(0);
  const int64_t rest = a.numel() / std::max<int64_t>(n, 1);
  return Reshape(a, Shape{n, rest});
}

Variable Permute(const Variable& a, const std::vector<int>& perm) {
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "Permute");
  Tensor out = metalora::Permute(a.value(), perm);
  prof.set_output(out);
  if (TraceRecorder* rec = ctx.trace_recorder()) {
    // A permute of parameters (TR's core unfolding) is the same bytes on
    // every request: fold it into a pinned constant. A permute of a
    // per-request temp has no plan encoding and rejects the trace.
    rec->FoldConstant(a.value(), out);
  }
  // Inverse permutation for the backward pass.
  std::vector<int> inv(perm.size());
  for (size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<size_t>(perm[i])] = static_cast<int>(i);
  return MakeOpResult<PermuteOp>(std::move(out), {a}, std::move(inv));
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  ML_CHECK(!parts.empty());
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "ConcatRows");
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<int64_t> row_counts;
  for (const auto& p : parts) {
    values.push_back(p.value());
    row_counts.push_back(p.dim(0));
  }
  Tensor out = metalora::ConcatRows(values);
  prof.set_output(out);
  const int64_t row_size = out.numel() / std::max<int64_t>(out.dim(0), 1);
  std::vector<Shape> shapes;
  for (const auto& p : parts) shapes.push_back(p.shape());
  return MakeOpResult<ConcatRowsOp>(std::move(out), parts,
                                    std::move(row_counts), std::move(shapes),
                                    row_size);
}

}  // namespace autograd
}  // namespace metalora
