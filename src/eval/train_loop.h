// The shared epoch/step loop behind PretrainBackbone and AdaptModel —
// extracted so both entry points run the identical pipeline, and home of
// the data-parallel multi-replica path.
//
// Replica model (TrainOptions::num_replicas > 1): every batch splits into
// `grad_shards` fixed contiguous micro-shards (data::ShardRange). Each
// shard runs forward + backward as its own deterministic single-threaded
// program — its own RuntimeContext (replica_id = shard index), its own
// generation-tagged step arena, its own GradSink — through ONE shared
// module tree (per-replica adapter binding slots, BatchNorm running stats
// gated to replica 0). ThreadPool::ForkJoinReplicas executes shards on
// `num_replicas` lanes (round-robin), the coordinator tree-reduces the
// sinks in fixed binary order (stride doubling over shard index), and
// Optimizer::AccumulateAndStep clips the reduced gradient once and steps.
// Because the shard grid and reduction order are fixed by grad_shards
// alone, trained parameters are bit-identical for ANY replica count > 1
// and invariant to the elastic lane schedule.
#ifndef METALORA_EVAL_TRAIN_LOOP_H_
#define METALORA_EVAL_TRAIN_LOOP_H_

#include "common/result.h"
#include "data/task_suite.h"
#include "eval/trainer.h"

namespace metalora {
namespace eval {

/// Runs the full training loop. `ctx == nullptr` means pre-training (train
/// mode, all parameters); non-null means adaptation (eval mode, adapter
/// parameters only, per-batch feature/task-id binding). Fails with
/// InvalidArgument when num_replicas > 1 meets active dropout — per-module
/// Rng draws would depend on shard interleaving, which the determinism
/// contract forbids.
Result<TrainStats> TrainLoop(Backbone& backbone,
                             const data::MultiTaskDataset& train,
                             const TrainOptions& options, AdaptContext* ctx);

}  // namespace eval
}  // namespace metalora

#endif  // METALORA_EVAL_TRAIN_LOOP_H_
