file(REMOVE_RECURSE
  "libml_autograd.a"
)
