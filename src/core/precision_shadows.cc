#include "core/precision_shadows.h"

namespace metalora {
namespace core {

std::vector<lowp::ShadowHandle> RegisterModuleShadows(nn::Module& module) {
  std::vector<lowp::ShadowHandle> handles;
  for (const nn::Module::NamedParameter& param : module.NamedParameters()) {
    const Tensor& value = param.variable->value();
    if (!value.defined() || value.rank() != 2) continue;
    if (value.numel() == 0) continue;
    handles.push_back(lowp::RegisterWeightShadow(value));
  }
  return handles;
}

}  // namespace core
}  // namespace metalora
