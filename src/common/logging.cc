#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace metalora {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  // Strip the directory part for brevity.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  std::cerr << stream_.str();
}

}  // namespace internal
}  // namespace metalora
