# Empty dependencies file for tn_fitting_test.
# This may be replaced when dependencies are built.
