file(REMOVE_RECURSE
  "CMakeFiles/ablation_unseen_task.dir/ablation_unseen_task.cc.o"
  "CMakeFiles/ablation_unseen_task.dir/ablation_unseen_task.cc.o.d"
  "ablation_unseen_task"
  "ablation_unseen_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unseen_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
