// Small string helpers shared across the library.
#ifndef METALORA_COMMON_STRING_UTIL_H_
#define METALORA_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace metalora {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// "12,345,678" style grouping for readable parameter counts.
std::string FormatWithCommas(int64_t value);

/// Lossless-enough human formatting of a byte or FLOP count (k/M/G suffix).
std::string HumanCount(double value);

}  // namespace metalora

#endif  // METALORA_COMMON_STRING_UTIL_H_
