// Learning-rate schedules operating on an Optimizer.
#ifndef METALORA_OPTIM_LR_SCHEDULER_H_
#define METALORA_OPTIM_LR_SCHEDULER_H_

#include <cstdint>

#include "optim/optimizer.h"

namespace metalora {
namespace optim {

class LrScheduler {
 public:
  explicit LrScheduler(Optimizer* optimizer) : optimizer_(optimizer) {}
  virtual ~LrScheduler() = default;

  /// Advances one step (typically once per epoch) and updates the LR.
  void Step() {
    ++step_;
    optimizer_->set_learning_rate(ComputeLr(step_));
  }

  int64_t step_count() const { return step_; }

 protected:
  virtual double ComputeLr(int64_t step) = 0;

  Optimizer* optimizer_;
  int64_t step_ = 0;
};

/// Cosine annealing from base_lr to min_lr over total_steps.
class CosineLr : public LrScheduler {
 public:
  CosineLr(Optimizer* optimizer, double base_lr, double min_lr,
           int64_t total_steps, int64_t warmup_steps = 0);

 protected:
  double ComputeLr(int64_t step) override;

 private:
  double base_lr_;
  double min_lr_;
  int64_t total_steps_;
  int64_t warmup_steps_;
};

/// Multiplies the LR by `gamma` every `period` steps.
class StepLr : public LrScheduler {
 public:
  StepLr(Optimizer* optimizer, double base_lr, int64_t period, double gamma);

 protected:
  double ComputeLr(int64_t step) override;

 private:
  double base_lr_;
  int64_t period_;
  double gamma_;
};

}  // namespace optim
}  // namespace metalora

#endif  // METALORA_OPTIM_LR_SCHEDULER_H_
