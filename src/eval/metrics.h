// Classification metrics and small statistics helpers.
#ifndef METALORA_EVAL_METRICS_H_
#define METALORA_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace metalora {
namespace eval {

/// Fraction of matching entries; vectors must be equal-length and non-empty.
double Accuracy(const std::vector<int64_t>& predictions,
                const std::vector<int64_t>& labels);

/// Accuracy of argmax(logits) vs labels; logits is [N, C].
double LogitsAccuracy(const Tensor& logits, const std::vector<int64_t>& labels);

/// Row-normalized confusion matrix [C, C]: entry (t, p) = P(pred=p | true=t).
Tensor ConfusionMatrix(const std::vector<int64_t>& predictions,
                       const std::vector<int64_t>& labels,
                       int64_t num_classes);

/// Per-class recall.
std::vector<double> PerClassAccuracy(const std::vector<int64_t>& predictions,
                                     const std::vector<int64_t>& labels,
                                     int64_t num_classes);

/// Sample mean.
double Mean(const std::vector<double>& v);

/// Unbiased sample standard deviation (0 for size < 2).
double StdDev(const std::vector<double>& v);

}  // namespace eval
}  // namespace metalora

#endif  // METALORA_EVAL_METRICS_H_
