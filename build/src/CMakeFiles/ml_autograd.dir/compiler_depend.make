# Empty compiler generated dependencies file for ml_autograd.
# This may be replaced when dependencies are built.
