# Empty dependencies file for table1_main.
# This may be replaced when dependencies are built.
