file(REMOVE_RECURSE
  "CMakeFiles/fig2_dummy_conv.dir/fig2_dummy_conv.cc.o"
  "CMakeFiles/fig2_dummy_conv.dir/fig2_dummy_conv.cc.o.d"
  "fig2_dummy_conv"
  "fig2_dummy_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dummy_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
