# Empty dependencies file for fig1_contraction.
# This may be replaced when dependencies are built.
