// Ablation E: how low-rank is a real fine-tuning delta?
//
// The premise behind LoRA — and therefore behind MetaLoRA — is that the
// weight change induced by adapting a pre-trained model has low effective
// rank. We test that premise directly on this repo's substrate: fully
// fine-tune the pre-trained ResNet on the shifted multi-task data, take the
// weight deltas W_after − W_before of each conv layer (unfolded over output
// channels), and fit CP models of increasing rank with CP-ALS. The relative
// reconstruction error vs rank curve quantifies how much of the update the
// low-rank ansatz can express.
#include <iostream>

#include "common/cli.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/task_suite.h"
#include "eval/trainer.h"
#include "nn/conv2d.h"
#include "tensor/tensor_ops.h"
#include "tn/cp_als.h"

using namespace metalora;  // NOLINT

int main(int argc, char** argv) {
  CommandLine cli;
  cli.AddBool("quick", false, "CI-scale run");
  cli.AddInt("seed", 42, "root seed");
  if (auto st = cli.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << cli.Usage(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.Usage(argv[0]);
    return 0;
  }
  const bool quick = cli.GetBool("quick");
  const uint64_t seed = cli.GetInt("seed");

  // Pre-train, snapshot, then fully fine-tune on the shifted tasks.
  data::ImageSpec spec{3, 16, 16};
  data::SyntheticImageGenerator gen(spec, 6);
  data::TaskSuite suite(4, seed + 1);
  data::MultiTaskDataset base =
      data::MakeBaseDataset(gen, quick ? 128 : 512, seed + 2);
  data::MultiTaskDataset shifted =
      data::MakeMultiTaskDataset(gen, suite, quick ? 24 : 96, seed + 3);

  nn::ResNetConfig rc;
  rc.base_width = 8;
  rc.num_classes = 6;
  rc.seed = seed + 4;
  eval::Backbone bb = eval::MakeResNetBackbone(rc);
  eval::TrainOptions popts;
  popts.epochs = quick ? 2 : 4;
  popts.lr = 2e-3;
  popts.seed = seed + 5;
  if (auto r = eval::PretrainBackbone(bb, base, popts); !r.ok()) {
    std::cerr << r.status().ToString() << "\n";
    return 1;
  }
  auto before = bb.module->StateDict();

  eval::TrainOptions fopts;
  fopts.epochs = quick ? 2 : 6;
  fopts.lr = 1e-3;  // gentle full fine-tune
  fopts.seed = seed + 6;
  if (auto r = eval::PretrainBackbone(bb, shifted, fopts); !r.ok()) {
    std::cerr << r.status().ToString() << "\n";
    return 1;
  }
  auto after = bb.module->StateDict();

  std::cout << "=== Ablation E: CP-ALS rank spectrum of full fine-tuning "
               "deltas (ResNet convs) ===\n\n";
  TablePrinter printer(
      "relative reconstruction error of dW (lower = more of the update "
      "captured)");
  printer.SetHeader({"layer", "dW shape", "R=1", "R=2", "R=4", "R=8",
                     "dW norm"});
  for (const auto& [name, w_after] : after) {
    if (name.find("conv1/weight") == std::string::npos &&
        name.find("stem/weight") == std::string::npos) {
      continue;
    }
    Tensor delta = Sub(w_after, before.at(name));
    // Unfold [O, I, K, K] -> [O, I*K*K]: the matrix LoRA would factor.
    const int64_t o = delta.dim(0);
    Tensor mat = delta.Reshape(Shape{o, delta.numel() / o});
    std::vector<std::string> row = {name, delta.shape().ToString()};
    for (int64_t rank : {1, 2, 4, 8}) {
      tn::CpAlsOptions opts;
      opts.seed = seed + 7;
      opts.max_iterations = 80;
      auto fit = tn::CpAls(mat, rank, opts);
      row.push_back(fit.ok() ? FormatDouble(fit->relative_error, 3)
                             : "n/a");
    }
    row.push_back(StrFormat("%.3f", Norm2(delta)));
    printer.AddRow(row);
  }
  printer.Print(std::cout);
  std::cout << "\n(errors falling well below 1.0 at small R confirm the "
               "low-rank premise;\n CP-ALS here plays the role of an SVD "
               "spectrum analysis for the unfolded delta)\n";
  return 0;
}
