// Sequential is header-only; this TU anchors the target in the build.
#include "nn/sequential.h"
