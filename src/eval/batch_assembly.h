// Row-wise batch assembly for the serving pipeline.
//
// The micro-batcher coalesces per-request tensors — conditioning features
// [n_i, D] and inputs [n_i, ...] — into one batch along dim 0, runs a
// single adapter forward, and splits the output rows back out per request.
// Every op on the MetaLoRA eval path is row-wise (linear/mapping GEMMs fix
// the per-element accumulation order independently of the other rows; conv
// and the per-sample contractions treat dim 0 samples independently), so
// batch outputs are bit-identical to one-request-at-a-time outputs —
// `tests/serve_server_test.cc` asserts exactly that.
#ifndef METALORA_EVAL_BATCH_ASSEMBLY_H_
#define METALORA_EVAL_BATCH_ASSEMBLY_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace metalora {
namespace eval {

/// Stacks `parts` along dim 0 into one freshly allocated heap tensor. All
/// parts must share rank and trailing (non-dim-0) dimensions.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Inverse of ConcatRows: splits `batch` into consecutive row groups of
/// `counts[i]` rows each (counts must sum to batch.dim(0)). Each part is a
/// deep heap copy, so callers may hand parts out even when `batch` lives in
/// a workspace arena that is about to be recycled.
std::vector<Tensor> SplitRows(const Tensor& batch,
                              const std::vector<int64_t>& counts);

}  // namespace eval
}  // namespace metalora

#endif  // METALORA_EVAL_BATCH_ASSEMBLY_H_
