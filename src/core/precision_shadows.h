// Low-precision shadow registration for whole modules.
//
// The tensor-level shadow registry (tensor/lowp.h) maps one frozen fp32
// weight to its prepacked bf16/int8 forms; this helper walks a module tree
// and registers every rank-2 parameter in one sweep. It is the bridge
// between "an adapter instance was just built/loaded and will never be
// mutated" (serve/adapter_registry.h's LoadInstance, eval-time snapshots
// in eval/experiment.cc) and the per-weight registry the GEMM facades
// consult.
//
// Only rank-2 parameters are registered — those are the x·Wᵀ Linear
// weights the int8/bf16 prepacked paths can serve. Conv filters and bias
// vectors are skipped (conv autocasts at most to bf16, which needs no
// prepack to be correct, and bias epilogues stay fp32). A parameter that
// is registered but never looked up costs only its shadow bytes.
//
// Contract: the module's parameters must stay frozen (no in-place updates)
// while the returned handles are alive. Drop the handles before resuming
// training; re-registering after the next freeze repacks from the new
// bytes.
#ifndef METALORA_CORE_PRECISION_SHADOWS_H_
#define METALORA_CORE_PRECISION_SHADOWS_H_

#include <vector>

#include "nn/module.h"
#include "tensor/lowp.h"

namespace metalora {
namespace core {

/// Registers bf16+int8 shadows for every rank-2 parameter in the subtree.
/// Returns one RAII handle per registered weight; the shadows (and the
/// packs' claim on the weights' storage) release when the vector dies.
std::vector<lowp::ShadowHandle> RegisterModuleShadows(nn::Module& module);

}  // namespace core
}  // namespace metalora

#endif  // METALORA_CORE_PRECISION_SHADOWS_H_
