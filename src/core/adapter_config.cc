#include "core/adapter_config.h"

namespace metalora {
namespace core {

std::string AdapterKindName(AdapterKind kind) {
  switch (kind) {
    case AdapterKind::kNone:
      return "Original";
    case AdapterKind::kLora:
      return "LoRA";
    case AdapterKind::kMultiLora:
      return "Multi-LoRA";
    case AdapterKind::kMetaLoraCp:
      return "Meta-LoRA CP";
    case AdapterKind::kMetaLoraTr:
      return "Meta-LoRA TR";
    case AdapterKind::kMoeLora:
      return "MoE-LoRA";
  }
  return "Unknown";
}

}  // namespace core
}  // namespace metalora
