// Intra-graph parallel op dispatch over the typed Op layer.
//
// The typed op layer (op.h) gives every forward a name and explicit input
// edges, which makes branch independence a checkable property instead of a
// comment: two subgraphs that share no op nodes — only leaf Variables — can
// execute concurrently without any synchronization beyond the join. That is
// exactly the structure of the adapter forwards: LoRA's frozen `W x` path
// versus `B(A(x))`, Multi-LoRA's per-task branches, and MetaLoRA's
// mapping-net seed generation versus the base matmul (Eq. 6/7 make the
// graph wider, not deeper).
//
// ParallelScope is the dispatcher. Callers Spawn() closures that each build
// one independent subgraph; Join() schedules them onto the thread pool
// (caller thread included) and returns the branch results in spawn order.
//
// Determinism guarantee: results and gradients are bit-identical to serial
// execution, because
//   1. each branch runs exactly the kernels serial execution would run, on
//      the same inputs — kernels partition output elements disjointly, so
//      no float is ever combined across threads;
//   2. each worker records graph nodes into its own RuntimeContext (the
//      per-thread current-context slot isolates recording state), and the
//      recorded segments are stitched back — counters merged, results
//      returned — in spawn order at the join point, so the resulting graph
//      is the one serial execution builds;
//   3. Backward (graph.cc) walks that graph in dependency order with one
//      accumulation per edge, independent of how the forward was scheduled.
//
// Degradation: with a zero-worker pool (single-core machines), dispatch
// disabled, a single branch, or when already running inside a pool task
// (nested dispatch), Join() runs every branch inline in the caller's
// context, in spawn order — byte-for-byte the serial code path.
#ifndef METALORA_AUTOGRAD_PARALLEL_H_
#define METALORA_AUTOGRAD_PARALLEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "autograd/runtime_context.h"
#include "autograd/variable.h"
#include "common/thread_pool.h"

namespace metalora {
namespace autograd {

/// Process-wide switch for the dispatcher (default on). Off forces every
/// ParallelScope / ParallelApplyNoGrad to the serial path; equivalence
/// tests and benches diff the two settings.
void SetParallelDispatchEnabled(bool enabled);
bool ParallelDispatchEnabled();

/// Overrides the pool the dispatcher uses (nullptr restores
/// GlobalThreadPool). Lets tests exercise the threaded path on machines
/// whose global pool has zero workers. Not thread-safe against concurrent
/// dispatch; set it up front.
void SetParallelDispatchPool(ThreadPool* pool);
ThreadPool& ParallelDispatchPool();

/// Fork/join dispatcher for independent forward subgraphs.
///
/// Usage:
///   ParallelScope ps;
///   ps.Spawn([&] { return base->Forward(x); });
///   ps.Spawn([&] { return AdapterDelta(x); });
///   std::vector<Variable> r = ps.Join();
///   return Add(r[0], Scale(r[1], scaling));
///
/// Branch closures must build graphs that are independent of each other
/// (see BranchesIndependent) and must not touch shared mutable state; leaf
/// Variables (parameters, inputs) may be shared freely.
///
/// On the no-grad arena fast path each parallel branch allocates from its
/// own scratch arena (the parent's arena is not thread-safe). Those scratch
/// arenas are recycled when the scope is destroyed, so branch results must
/// be consumed — combined into a parent-context tensor or Clone()d — before
/// the ParallelScope goes out of scope. This is the same contract
/// WorkspaceArena already imposes on results escaping a Reset.
class ParallelScope {
 public:
  /// `pool` of nullptr means the dispatch pool (global unless overridden).
  explicit ParallelScope(ThreadPool* pool = nullptr);
  ~ParallelScope();
  ParallelScope(const ParallelScope&) = delete;
  ParallelScope& operator=(const ParallelScope&) = delete;

  /// Registers a branch. Must be called before Join().
  void Spawn(std::function<Variable()> fn);

  /// Executes all branches and returns their results in spawn order.
  /// Parallel when profitable and safe, serial otherwise; either way the
  /// returned Variables (and later gradients) are bit-identical. Branch
  /// recording counters are folded into the caller's RuntimeContext in
  /// spawn order. May be called at most once per scope.
  std::vector<Variable> Join();

 private:
  struct BranchSlot;

  ThreadPool* pool_;
  std::vector<std::function<Variable()>> branches_;
  std::vector<std::unique_ptr<BranchSlot>> slots_;
  bool joined_ = false;
};

/// Walks the recorded Op input edges of every root and verifies the op-node
/// sets are pairwise disjoint (shared leaves are allowed — that is the
/// fork point). True means the subgraphs were safe to dispatch
/// concurrently; tests assert this on the wired adapter forwards.
bool BranchesIndependent(const std::vector<Variable>& roots);

/// Data-parallel no-grad execution for the dataset-scale eval paths
/// (feature extraction, query-blocked KNN). Splits [begin, end) into
/// fixed-size blocks of `block` and calls fn(lo, hi, ctx) once per block,
/// where ctx is a no-grad RuntimeContext whose scratch WorkspaceArena is
/// private to the executing task and Reset() before every block. Block
/// boundaries are identical regardless of thread count, and fn must write
/// only to per-range disjoint outputs, so results never depend on the
/// schedule. Anything fn keeps beyond the call must be copied out of the
/// arena. Falls back to sequential block execution with a single scratch
/// arena on a zero-worker pool or when dispatch is disabled.
void ParallelApplyNoGrad(
    int64_t begin, int64_t end, int64_t block,
    const std::function<void(int64_t, int64_t, RuntimeContext&)>& fn,
    ThreadPool* pool = nullptr);

}  // namespace autograd
}  // namespace metalora

#endif  // METALORA_AUTOGRAD_PARALLEL_H_
