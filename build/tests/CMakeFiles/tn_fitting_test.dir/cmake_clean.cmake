file(REMOVE_RECURSE
  "CMakeFiles/tn_fitting_test.dir/tn_fitting_test.cc.o"
  "CMakeFiles/tn_fitting_test.dir/tn_fitting_test.cc.o.d"
  "tn_fitting_test"
  "tn_fitting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tn_fitting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
