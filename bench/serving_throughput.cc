// AdapterServer throughput: batched micro-batching vs one-at-a-time
// serving, and warm result-cache vs cold, under simulated client load.
//
// Scenario: a mapping-dominated MetaLoRA-CP linear adapter (conditioning
// net 256 -> 512 -> R dwarfs the 64x64 base layer) served in-process.
// N client threads each submit a stream of single-row requests and block
// on the returned futures. Two serving modes:
//
//   serial  — max_batch_size=1: every request runs its own forward
//             (one-at-a-time baseline; the queue plumbing is identical).
//   batched — max_batch_size=8: the micro-batcher coalesces concurrent
//             requests into one forward over the concatenated rows.
//
// Contracts asserted here, not just reported:
//   1. Bit-identity (always, including --smoke): every served output is
//      byte-identical to a one-at-a-time no-grad forward on a twin adapter
//      *under the same autocast policy* — batching must never change bytes,
//      at any precision. (Low-precision GEMMs process activation rows
//      independently — per-row int8 scales, row-local bf16 chains — which
//      is what makes this assertable.)
//   2. Accuracy envelope (--precision=bf16|int8 only): the low-precision
//      one-at-a-time reference must stay within a lenient relative error
//      of the fp32 reference (bf16 <= 0.1, int8 <= 0.5); the measured max
//      is printed and exported.
//   3. Throughput (skipped under --smoke so weak CI runners don't flake):
//      batched >= 2x serial at 8 clients, and a warm result cache >= 2x
//      a cold one at 8 clients.
//   4. Compiled plans (serve/plan.h): repeat traffic with the result cache
//      off, served with plans on vs off at request batch sizes 1/2/4.
//      Plan outputs must stay bit-identical to the dynamic reference and
//      at least one batch must be served by direct plan execution
//      (always); off smoke, plan-on p50 must beat plan-off p50 at every
//      batch size.
//
// `--precision=fp32|bf16|int8` wires AutocastPolicy::Serving(p) into the
// server worker contexts and registers quantized shadows on the adapter at
// load (the AdapterRegistry::Publish analogue for this in-process setup).
// fp32 is the default and exercises the identical code path as no flag.
//
// Writes BENCH_serving.json (throughput + p50/p99 latency per client
// count, batch-size distribution, cache hit rates and evictions, per-
// precision GEMM dispatch counts); exits nonzero if any contract fails.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "autograd/runtime_context.h"
#include "autograd/variable.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/metalora_linear.h"
#include "core/precision_shadows.h"
#include "nn/linear.h"
#include "serve/adapter_server.h"
#include "tensor/autocast.h"
#include "tensor/lowp.h"
#include "tensor/random_init.h"

using namespace metalora;  // NOLINT

namespace {

constexpr int64_t kFeatureDim = 256;
constexpr int64_t kMappingHidden = 512;
constexpr int64_t kBaseDim = 64;

std::unique_ptr<core::MetaLoraCpLinear> BuildAdapter() {
  core::AdapterOptions mopts;
  mopts.kind = core::AdapterKind::kMetaLoraCp;
  mopts.rank = 8;
  mopts.alpha = 8.0f;
  mopts.feature_dim = kFeatureDim;
  mopts.mapping_hidden = kMappingHidden;
  mopts.seed = 29;
  Rng brng(5);
  auto adapter = std::make_unique<core::MetaLoraCpLinear>(
      std::make_unique<nn::Linear>(kBaseDim, kBaseDim, /*bias=*/true, brng),
      mopts);
  for (auto& np : adapter->NamedParameters()) {
    if (np.name == "lora_b") {
      FillNormal(np.variable->mutable_value(), brng, 0.0f, 0.05f);
    }
  }
  return adapter;
}

/// Deterministic request stream: request r maps to a unique (features, x)
/// pair, so both serving modes and the serial reference see identical
/// inputs. `key_space` folds the stream onto that many distinct requests
/// (0 = all unique) to model repeat traffic for the warm-cache and
/// compiled-plan scenarios. `rows` > 1 makes request r carry that many
/// activation rows (the compiled-plan batch-size sweep).
Tensor RequestFeatures(int64_t r, int64_t rows = 1) {
  Rng rng(10000 + static_cast<uint64_t>(r) * 2);
  return RandomNormal(Shape{rows, kFeatureDim}, rng);
}

Tensor RequestInput(int64_t r, int64_t rows = 1) {
  Rng rng(10001 + static_cast<uint64_t>(r) * 2);
  return RandomNormal(Shape{rows, kBaseDim}, rng);
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.defined() && b.defined() && a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

struct ScenarioResult {
  std::string mode;
  int clients = 0;
  int64_t requests = 0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
  serve::ServeStats stats;
  std::vector<Tensor> outputs;  // indexed by request id
};

/// Runs `clients` threads, each submitting `per_client` requests against a
/// fresh adapter + server, and blocks until every future resolves. When
/// `policy` enables a low-precision tier, quantized shadows are registered
/// on the fresh adapter first (quantize-once-at-load, never per request).
ScenarioResult RunScenario(const std::string& mode, int clients,
                           int per_client, int64_t max_batch_size,
                           int64_t key_space, int64_t result_cache_entries,
                           const AutocastPolicy& policy,
                           bool cold_adapter_cache = false, int64_t rows = 1,
                           bool enable_plans = false, int num_workers = 2) {
  auto adapter = BuildAdapter();
  std::vector<lowp::ShadowHandle> shadows;
  if (policy.enabled) shadows = core::RegisterModuleShadows(*adapter);
  serve::AdapterServerOptions opts;
  opts.autocast = policy;
  opts.max_batch_size = max_batch_size;
  opts.flush_deadline_us = 500;
  opts.num_workers = num_workers;
  opts.queue_capacity = 256;
  opts.result_cache_entries = result_cache_entries;
  opts.enable_plans = enable_plans;
  if (cold_adapter_cache) {
    // Fully cold serving: every batch pays the mapping network (mirrors
    // arena_cache's cold eval mode, which clears before every forward).
    core::ConditioningCache* cache = adapter->conditioning_cache();
    opts.worker_batch_hook = [cache] { cache->Clear(); };
  }
  serve::AdapterServer server(opts);
  const int sid =
      server.RegisterSession(adapter.get(), adapter->conditioning_cache());
  server.Start();

  const int64_t total = static_cast<int64_t>(clients) * per_client;
  std::vector<std::future<Tensor>> futures(static_cast<size_t>(total));
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const int64_t id = static_cast<int64_t>(c) * per_client + i;
        const int64_t r = key_space > 0 ? id % key_space : id;
        futures[static_cast<size_t>(id)] =
            server.Submit(sid, RequestFeatures(r, rows), RequestInput(r, rows));
      }
    });
  }
  for (auto& t : threads) t.join();

  ScenarioResult res;
  res.outputs.resize(static_cast<size_t>(total));
  for (int64_t id = 0; id < total; ++id) {
    res.outputs[static_cast<size_t>(id)] =
        futures[static_cast<size_t>(id)].get();
  }
  const double elapsed_s = timer.Seconds();
  server.Shutdown();

  res.mode = mode;
  res.clients = clients;
  res.requests = total;
  res.throughput_rps = static_cast<double>(total) / elapsed_s;
  res.stats = server.stats();
  res.p50_us = res.stats.LatencyPercentileUs(50);
  res.p99_us = res.stats.LatencyPercentileUs(99);
  res.mean_batch = res.stats.MeanBatchSize();
  return res;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

double HitRate(int64_t hits, int64_t misses) {
  const int64_t total = hits + misses;
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli;
  cli.AddBool("smoke", false,
              "small request counts, skip throughput assertions (CI "
              "correctness guard on weak runners); bit-identity still "
              "asserted");
  cli.AddString("precision", "fp32",
                "serving GEMM tier: fp32 | bf16 | int8 (wires "
                "AutocastPolicy::Serving into the worker contexts)");
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << cli.Usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.Usage(argv[0]);
    return 0;
  }
  const bool smoke = cli.GetBool("smoke");
  OpPrecision precision = OpPrecision::kFp32;
  if (!ParseOpPrecision(cli.GetString("precision"), &precision)) {
    std::cerr << "unknown --precision value '" << cli.GetString("precision")
              << "' (want fp32 | bf16 | int8)\n";
    return 2;
  }
  const AutocastPolicy policy = AutocastPolicy::Serving(precision);
  const int per_client = smoke ? 8 : 64;
  const std::vector<int> client_counts =
      smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8};

  std::cout << "=== AdapterServer: batched vs one-at-a-time serving ===\n\n"
            << "hardware threads: " << std::thread::hardware_concurrency()
            << " | precision: " << OpPrecisionName(precision)
            << (smoke ? " (smoke mode)" : "") << "\n\n";

  // Serial reference outputs, computed once on a twin adapter: the batched
  // server must reproduce these bytes exactly regardless of how requests
  // got coalesced. Cold/warm scenarios reuse the same key space. The
  // reference runs under the same autocast policy as the servers (with its
  // own shadows registered), so bit-identity is asserted per tier; an fp32
  // reference is kept alongside to measure the low-precision error.
  const int max_clients = *std::max_element(client_counts.begin(),
                                            client_counts.end());
  const int64_t max_requests =
      static_cast<int64_t>(max_clients) * per_client;
  auto ref_adapter = BuildAdapter();
  std::vector<lowp::ShadowHandle> ref_shadows;
  if (policy.enabled) {
    ref_shadows = core::RegisterModuleShadows(*ref_adapter);
  }
  std::vector<Tensor> reference(static_cast<size_t>(max_requests));
  std::vector<Tensor> reference_fp32(static_cast<size_t>(max_requests));
  {
    autograd::NoGradGuard ng;
    autograd::RuntimeContext& ctx = autograd::RuntimeContext::Current();
    const AutocastPolicy saved_policy = ctx.autocast();
    for (int pass = 0; pass < (policy.enabled ? 2 : 1); ++pass) {
      // Pass 0: fp32. Pass 1 (low precision only): the serving policy.
      ctx.set_autocast(pass == 0 ? AutocastPolicy::Disabled() : policy);
      std::vector<Tensor>& dst = pass == 0 && policy.enabled
                                     ? reference_fp32
                                     : reference;
      for (int64_t r = 0; r < max_requests; ++r) {
        ref_adapter->SetFeatures(
            autograd::Variable(RequestFeatures(r), /*requires_grad=*/false));
        dst[static_cast<size_t>(r)] =
            ref_adapter
                ->Forward(autograd::Variable(RequestInput(r),
                                             /*requires_grad=*/false))
                .value()
                .Clone();
        // The reference is one-at-a-time by construction: clear the seed
        // cache so every forward is cold.
        ref_adapter->conditioning_cache()->Clear();
      }
    }
    ctx.set_autocast(saved_policy);
  }

  // Accuracy envelope: worst absolute deviation from the fp32 reference,
  // normalized by that request's output magnitude (max-abs). Element-wise
  // relative error is the wrong metric here — near-zero outputs from
  // cancellation make the ratio meaningless at any precision.
  double max_rel_err = 0.0;
  if (policy.enabled) {
    for (int64_t r = 0; r < max_requests; ++r) {
      const Tensor& lo = reference[static_cast<size_t>(r)];
      const Tensor& hi = reference_fp32[static_cast<size_t>(r)];
      double max_abs = 0.0, max_diff = 0.0;
      for (int64_t i = 0; i < lo.numel(); ++i) {
        max_abs = std::max(max_abs,
                           std::fabs(static_cast<double>(hi.data()[i])));
        max_diff = std::max(
            max_diff,
            std::fabs(static_cast<double>(lo.data()[i]) - hi.data()[i]));
      }
      max_rel_err = std::max(max_rel_err, max_diff / std::max(max_abs, 1e-3));
    }
    std::cout << "max error vs fp32 reference (relative to output "
              << "magnitude): " << max_rel_err << "\n\n";
  }

  // Sweep client counts in both modes. Caches are disabled here so the
  // comparison isolates the micro-batching win (unique requests anyway).
  std::vector<ScenarioResult> sweep;
  bool bit_identical = true;
  for (int clients : client_counts) {
    for (bool batched : {false, true}) {
      ScenarioResult r = RunScenario(batched ? "batched" : "serial", clients,
                                     per_client,
                                     /*max_batch_size=*/batched ? 8 : 1,
                                     /*key_space=*/0,
                                     /*result_cache_entries=*/0, policy);
      for (int64_t id = 0; id < r.requests; ++id) {
        if (!BitIdentical(r.outputs[static_cast<size_t>(id)],
                          reference[static_cast<size_t>(id)])) {
          std::cerr << "FAIL: " << r.mode << " output " << id << " at "
                    << clients << " clients diverged from the one-at-a-time "
                    << "reference\n";
          bit_identical = false;
        }
      }
      sweep.push_back(std::move(r));
    }
  }

  TablePrinter table("serving throughput (unique requests, caches off)");
  table.SetHeader({"clients", "mode", "req/s", "p50 us", "p99 us",
                   "mean batch"});
  double serial_8c = 0.0, batched_8c = 0.0;
  for (const ScenarioResult& r : sweep) {
    table.AddRow({std::to_string(r.clients), r.mode, Fmt(r.throughput_rps),
                  Fmt(r.p50_us), Fmt(r.p99_us), Fmt(r.mean_batch)});
    if (r.clients == 8) {
      (r.mode == "batched" ? batched_8c : serial_8c) = r.throughput_rps;
    }
  }
  table.Print(std::cout);
  const double batch_speedup =
      serial_8c > 0.0 ? batched_8c / serial_8c : 0.0;
  if (!smoke) {
    std::cout << "\nbatched vs serial at 8 clients: " << Fmt(batch_speedup)
              << "x\n";
  }

  // Warm vs cold caches at the highest client count: the same repeat-heavy
  // stream (requests fold onto 16 distinct keys) served fully cold (result
  // cache off, adapter seed cache cleared every batch) vs fully warm.
  const int cache_clients = max_clients;
  const int64_t key_space = smoke ? 4 : 16;  // smoke still sees repeats
  ScenarioResult cold = RunScenario("cold", cache_clients, per_client,
                                    /*max_batch_size=*/8, key_space,
                                    /*result_cache_entries=*/0, policy,
                                    /*cold_adapter_cache=*/true);
  ScenarioResult warm = RunScenario("warm", cache_clients, per_client,
                                    /*max_batch_size=*/8, key_space,
                                    /*result_cache_entries=*/1024, policy);
  for (int64_t id = 0; id < warm.requests; ++id) {
    const int64_t r = id % key_space;
    if (!BitIdentical(warm.outputs[static_cast<size_t>(id)],
                      reference[static_cast<size_t>(r)]) ||
        !BitIdentical(cold.outputs[static_cast<size_t>(id)],
                      reference[static_cast<size_t>(r)])) {
      std::cerr << "FAIL: cached serving diverged from the reference on "
                << "request " << id << "\n";
      bit_identical = false;
    }
  }
  const double cache_speedup =
      cold.throughput_rps > 0.0 ? warm.throughput_rps / cold.throughput_rps
                                : 0.0;
  const double warm_hit_rate = HitRate(warm.stats.result_cache_hits,
                                       warm.stats.result_cache_misses);

  TablePrinter cache_table("repeat traffic: warm vs cold result cache");
  cache_table.SetHeader(
      {"mode", "req/s", "p50 us", "p99 us", "hits", "misses", "evictions"});
  for (const ScenarioResult* r : {&cold, &warm}) {
    cache_table.AddRow({r->mode, Fmt(r->throughput_rps), Fmt(r->p50_us),
                        Fmt(r->p99_us),
                        std::to_string(r->stats.result_cache_hits),
                        std::to_string(r->stats.result_cache_misses),
                        std::to_string(r->stats.result_cache_evictions)});
  }
  cache_table.Print(std::cout);
  std::cout << "\nwarm vs cold: " << Fmt(cache_speedup)
            << "x, result-cache hit rate " << warm_hit_rate << "\n";

  // Compiled serving plans: the same repeat-heavy stream with the result
  // cache off — every request runs the serving path — with plans enabled
  // vs disabled, at request batch sizes 1..4. A single client submitting
  // n-row requests through max_batch_size=1 keeps every batch's shape and
  // feature bytes recurring, so after the first pass over the key space
  // the conditioning cache is warm and plan execution takes over. The
  // plan must reproduce the dynamic path's bytes exactly and, off smoke,
  // cut p50 at every batch size.
  struct PlanPoint {
    int64_t rows = 0;
    ScenarioResult off, on;
  };
  std::vector<PlanPoint> plan_points;
  bool plans_served = true;
  {
    autograd::NoGradGuard ng;
    autograd::RuntimeContext& ctx = autograd::RuntimeContext::Current();
    const AutocastPolicy saved_policy = ctx.autocast();
    ctx.set_autocast(policy.enabled ? policy : AutocastPolicy::Disabled());
    // More requests than the other scenarios: each batch is a ~10us
    // forward, and the p50 must separate plan hits from the (slower)
    // traced warm-up misses against scheduler noise on small runners.
    const int plan_requests = smoke ? per_client : 512;
    for (int64_t rows : {int64_t{1}, int64_t{2}, int64_t{4}}) {
      // Per-key references at this row count (cold one-at-a-time twin).
      std::vector<Tensor> refs(static_cast<size_t>(key_space));
      for (int64_t r = 0; r < key_space; ++r) {
        ref_adapter->SetFeatures(autograd::Variable(
            RequestFeatures(r, rows), /*requires_grad=*/false));
        refs[static_cast<size_t>(r)] =
            ref_adapter
                ->Forward(autograd::Variable(RequestInput(r, rows),
                                             /*requires_grad=*/false))
                .value()
                .Clone();
        ref_adapter->conditioning_cache()->Clear();
      }
      PlanPoint point;
      point.rows = rows;
      for (bool plans : {false, true}) {
        // One worker: the comparison isolates per-batch execution cost.
        // (With several workers the plan path's lock-free hits run
        // concurrently — a throughput win, but scheduler timeslicing on
        // small CI runners would drown the latency signal.)
        ScenarioResult r = RunScenario(
            plans ? "plan-on" : "plan-off", /*clients=*/1, plan_requests,
            /*max_batch_size=*/1, key_space, /*result_cache_entries=*/0,
            policy, /*cold_adapter_cache=*/false, rows, plans,
            /*num_workers=*/1);
        for (int64_t id = 0; id < r.requests; ++id) {
          if (!BitIdentical(r.outputs[static_cast<size_t>(id)],
                            refs[static_cast<size_t>(id % key_space)])) {
            std::cerr << "FAIL: " << r.mode << " rows=" << rows << " output "
                      << id << " diverged from the dynamic reference\n";
            bit_identical = false;
          }
        }
        (plans ? point.on : point.off) = std::move(r);
      }
      if (point.on.stats.plan_hits <= 0) {
        std::cerr << "FAIL: plan-on rows=" << point.rows
                  << " served no batch by plan execution\n";
        plans_served = false;
      }
      plan_points.push_back(std::move(point));
    }
    ctx.set_autocast(saved_policy);
  }

  // The asserted metric is the per-batch *forward* p50 (plan execution vs
  // dynamic graph), not request latency: on small runners request latency
  // is dominated by scheduler wakeups in the queue plumbing, which plans
  // cannot touch and which drown the per-op dispatch they eliminate.
  TablePrinter plan_table("compiled plans: forward p50 with plans on vs off");
  plan_table.SetHeader({"rows", "off fwd p50 us", "on fwd p50 us", "speedup",
                        "compiles", "hits", "misses", "fallbacks"});
  bool plan_p50_ok = true;
  for (const PlanPoint& p : plan_points) {
    const double off_fwd = serve::ServeStats::PercentileUs(
        p.off.stats.forward_us, 50);
    const double on_fwd = serve::ServeStats::PercentileUs(
        p.on.stats.forward_us, 50);
    const double speedup = on_fwd > 0.0 ? off_fwd / on_fwd : 0.0;
    plan_table.AddRow({std::to_string(p.rows), Fmt(off_fwd), Fmt(on_fwd),
                       Fmt(speedup),
                       std::to_string(p.on.stats.plan_compiles),
                       std::to_string(p.on.stats.plan_hits),
                       std::to_string(p.on.stats.plan_misses),
                       std::to_string(p.on.stats.plan_fallbacks)});
    if (on_fwd >= off_fwd) plan_p50_ok = false;
  }
  plan_table.Print(std::cout);

  bool ok = bit_identical;
  if (!bit_identical) {
    std::cout << "FAIL: served outputs not bit-identical to one-at-a-time "
                 "forwards\n";
  }
  // Lenient tier-specific error envelopes: this adapter's outputs are
  // O(1)-scale, so these bound gross quantization bugs (wrong scale, wrong
  // channel) without flaking on legitimate rounding.
  const double rel_err_bound = precision == OpPrecision::kInt8 ? 0.5 : 0.1;
  if (policy.enabled && max_rel_err > rel_err_bound) {
    std::cout << "FAIL: " << OpPrecisionName(precision)
              << " reference max relative error " << max_rel_err
              << " vs fp32, expected <= " << rel_err_bound << "\n";
    ok = false;
  }
  if (!plans_served) ok = false;
  if (!smoke) {
    if (batch_speedup < 2.0) {
      std::cout << "FAIL: batched serving " << Fmt(batch_speedup)
                << "x serial at 8 clients, expected >= 2x\n";
      ok = false;
    }
    if (cache_speedup < 2.0) {
      std::cout << "FAIL: warm result cache " << Fmt(cache_speedup)
                << "x cold, expected >= 2x\n";
      ok = false;
    }
    if (!plan_p50_ok) {
      std::cout << "FAIL: compiled plans did not cut forward p50 at every "
                   "batch size (see plan table)\n";
      ok = false;
    }
  }
  if (ok) {
    std::cout << "OK: bit-identical"
              << (smoke ? " (throughput assertions skipped in smoke mode)"
                        : ", batched >= 2x serial, warm >= 2x cold, plan-on "
                          "forward p50 < plan-off forward p50")
              << "\n";
  }

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"precision\": \"" << OpPrecisionName(precision) << "\",\n"
       << "  \"scenarios\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const ScenarioResult& r = sweep[i];
    json << "    {\"clients\": " << r.clients << ", \"mode\": \"" << r.mode
         << "\", \"precision\": \"" << OpPrecisionName(precision)
         << "\", \"requests\": " << r.requests
         << ", \"throughput_rps\": " << r.throughput_rps
         << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
         << ", \"mean_batch_size\": " << r.mean_batch
         << ", \"size_flushes\": " << r.stats.size_flushes
         << ", \"deadline_flushes\": " << r.stats.deadline_flushes
         << ", \"gemm_dispatch\": {\"fp32\": " << r.stats.gemm_dispatch[0]
         << ", \"bf16\": " << r.stats.gemm_dispatch[1]
         << ", \"int8\": " << r.stats.gemm_dispatch[2] << "}}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"plans\": [\n";
  for (size_t i = 0; i < plan_points.size(); ++i) {
    const PlanPoint& p = plan_points[i];
    const double off_fwd = serve::ServeStats::PercentileUs(
        p.off.stats.forward_us, 50);
    const double on_fwd = serve::ServeStats::PercentileUs(
        p.on.stats.forward_us, 50);
    json << "    {\"rows\": " << p.rows
         << ", \"off_forward_p50_us\": " << off_fwd
         << ", \"on_forward_p50_us\": " << on_fwd
         << ", \"forward_p50_speedup\": "
         << (on_fwd > 0.0 ? off_fwd / on_fwd : 0.0)
         << ", \"off_p50_us\": " << p.off.p50_us
         << ", \"on_p50_us\": " << p.on.p50_us
         << ", \"off_throughput_rps\": " << p.off.throughput_rps
         << ", \"on_throughput_rps\": " << p.on.throughput_rps
         << ", \"plan_compiles\": " << p.on.stats.plan_compiles
         << ", \"plan_hits\": " << p.on.stats.plan_hits
         << ", \"plan_misses\": " << p.on.stats.plan_misses
         << ", \"plan_fallbacks\": " << p.on.stats.plan_fallbacks << "}"
         << (i + 1 < plan_points.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"max_rel_err_vs_fp32\": " << max_rel_err << ",\n"
       << "  \"batched_vs_serial_speedup_8c\": ";
  // The 8-client scenario only runs off smoke; emit null, not a bogus 0,
  // when it didn't.
  if (serial_8c > 0.0) {
    json << batch_speedup;
  } else {
    json << "null";
  }
  json << ",\n"
       << "  \"warm_vs_cold_speedup\": " << cache_speedup << ",\n"
       << "  \"result_cache\": {\"hits\": " << warm.stats.result_cache_hits
       << ", \"misses\": " << warm.stats.result_cache_misses
       << ", \"hit_rate\": " << warm_hit_rate
       << ", \"evictions\": " << warm.stats.result_cache_evictions << "},\n"
       << "  \"adapter_cache\": {\"hits\": " << warm.stats.adapter_cache_hits
       << ", \"misses\": " << warm.stats.adapter_cache_misses
       << ", \"hit_rate\": "
       << HitRate(warm.stats.adapter_cache_hits,
                  warm.stats.adapter_cache_misses)
       << ", \"evictions\": " << warm.stats.adapter_cache_evictions << "},\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"ok\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote BENCH_serving.json\n";
  return ok ? 0 : 1;
}
