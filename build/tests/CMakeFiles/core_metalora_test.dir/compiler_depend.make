# Empty compiler generated dependencies file for core_metalora_test.
# This may be replaced when dependencies are built.
