#include "nn/pooling.h"

#include "autograd/ops.h"

namespace metalora {
namespace nn {

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride, int64_t padding)
    : Module("MaxPool2d") {
  geom_.kernel_h = kernel;
  geom_.kernel_w = kernel;
  geom_.stride = stride;
  geom_.padding = padding;
}

Variable MaxPool2d::Forward(const Variable& x) {
  return autograd::MaxPool2d(x, geom_);
}

AvgPool2d::AvgPool2d(int64_t kernel, int64_t stride, int64_t padding)
    : Module("AvgPool2d") {
  geom_.kernel_h = kernel;
  geom_.kernel_w = kernel;
  geom_.stride = stride;
  geom_.padding = padding;
}

Variable AvgPool2d::Forward(const Variable& x) {
  return autograd::AvgPool2d(x, geom_);
}

Variable GlobalAvgPool::Forward(const Variable& x) {
  return autograd::GlobalAvgPool(x);
}

}  // namespace nn
}  // namespace metalora
