#include "autograd/ops.h"
#include "tensor/conv_ops.h"

namespace metalora {
namespace autograd {

Variable Conv2d(const Variable& x, const Variable& weight,
                const Variable& bias, const ConvGeom& geom) {
  const bool has_bias = bias.defined();
  Tensor out = Conv2dForward(x.value(), weight.value(),
                             has_bias ? bias.value() : Tensor(), geom);
  Tensor xv = x.value(), wv = weight.value();
  std::vector<Variable> inputs =
      has_bias ? std::vector<Variable>{x, weight, bias}
               : std::vector<Variable>{x, weight};
  return MakeOpResult(
      std::move(out), std::move(inputs), "Conv2d",
      [xv, wv, geom, has_bias](const Tensor& g) -> std::vector<Tensor> {
        Tensor gx, gw, gb;
        Conv2dBackward(xv, wv, g, geom, &gx, &gw, has_bias ? &gb : nullptr,
                       has_bias);
        std::vector<Tensor> grads = {gx, gw};
        if (has_bias) grads.push_back(gb);
        return grads;
      });
}

Variable MaxPool2d(const Variable& x, const ConvGeom& geom) {
  std::vector<int64_t> argmax;
  Tensor out = metalora::MaxPool2d(x.value(), geom, &argmax);
  Shape in_shape = x.shape();
  return MakeOpResult(
      std::move(out), {x}, "MaxPool2d",
      [in_shape, argmax](const Tensor& g) -> std::vector<Tensor> {
        return {MaxPool2dBackward(g, in_shape, argmax)};
      });
}

Variable AvgPool2d(const Variable& x, const ConvGeom& geom) {
  Tensor out = metalora::AvgPool2d(x.value(), geom);
  Shape in_shape = x.shape();
  return MakeOpResult(
      std::move(out), {x}, "AvgPool2d",
      [in_shape, geom](const Tensor& g) -> std::vector<Tensor> {
        return {AvgPool2dBackward(g, in_shape, geom)};
      });
}

Variable GlobalAvgPool(const Variable& x) {
  Tensor out = metalora::GlobalAvgPool(x.value());
  Shape in_shape = x.shape();
  return MakeOpResult(
      std::move(out), {x}, "GlobalAvgPool",
      [in_shape](const Tensor& g) -> std::vector<Tensor> {
        return {GlobalAvgPoolBackward(g, in_shape)};
      });
}

}  // namespace autograd
}  // namespace metalora
