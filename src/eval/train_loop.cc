#include "eval/train_loop.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "autograd/graph.h"
#include "autograd/ops.h"
#include "autograd/runtime_context.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "nn/activation.h"
#include "optim/adam.h"
#include "optim/grad_clip.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace eval {

namespace {

// Any dropout that would actually fire? Per-module Rng draws consumed from
// concurrent shards would make the mask sequence depend on interleaving,
// which breaks the replica determinism contract, so the replicated path
// refuses to run with one.
bool HasActiveDropout(nn::Module* m) {
  if (auto* d = dynamic_cast<nn::Dropout*>(m)) {
    if (d->training() && d->p() > 0.0f) return true;
  }
  for (nn::Module* child : m->Children()) {
    if (HasActiveDropout(child)) return true;
  }
  return false;
}

// The legacy single-replica loop, preserved verbatim: num_replicas == 1
// must stay bit-identical to the trainer before replicas existed.
Result<TrainStats> RunSingle(Backbone& backbone,
                             const data::MultiTaskDataset& train,
                             const TrainOptions& options, AdaptContext* ctx) {
  const bool adapting = ctx != nullptr;

  std::vector<nn::Variable> trainable;
  for (auto* v : backbone.module->TrainableParameters()) trainable.push_back(*v);
  if (trainable.empty()) {
    return Status::FailedPrecondition("no trainable parameters");
  }

  optim::AdamOptions adam_opts;
  adam_opts.lr = options.lr;
  adam_opts.weight_decay = options.weight_decay;
  optim::Adam optimizer(trainable, adam_opts);

  data::DataLoader loader(train, options.batch_size, /*shuffle=*/true,
                          options.seed);

  // Step-scoped arena: one batch's whole graph — forward intermediates,
  // saved tensors, backward scratch — lives in generation-tagged blocks
  // reclaimed wholesale by NextGeneration() at the next batch boundary.
  // Everything the loop reads after the step either lives on the heap
  // already (loss/logits are read before the bump) or is pinned there by
  // Backward (leaf gradients, for the optimizer).
  autograd::WorkspaceArena step_arena;
  autograd::RuntimeContext arena_ctx;
  std::optional<autograd::RuntimeContextScope> arena_scope;
  if (options.step_arena) {
    arena_ctx.set_profiling(autograd::RuntimeContext::Current().profiling());
    arena_ctx.set_arena(&step_arena);
    arena_ctx.set_arena_serves_grad(true);
    arena_scope.emplace(&arena_ctx);
  }

  TrainStats stats;
  Timer timer;
  double last_acc = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double loss_acc = 0.0;
    int64_t seen = 0, correct = 0;
    for (int64_t b = 0; b < loader.num_batches(); ++b) {
      if (options.step_arena) step_arena.NextGeneration();
      data::Batch batch = loader.GetBatch(b);
      nn::Variable x(batch.images, /*requires_grad=*/false);

      if (adapting) {
        if (ctx->extractor != nullptr) {
          Tensor feats = ctx->extractor->Extract(batch.images);
          ctx->injection.BindFeatures(
              nn::Variable(std::move(feats), /*requires_grad=*/false));
        }
        ctx->injection.BindTaskIds(batch.task_ids);
      }

      nn::Variable logits = backbone.forward_logits(x);
      nn::Variable loss = autograd::SoftmaxCrossEntropy(logits, batch.labels);

      if (epoch == 0 && b == 0) {
        // One step's graph is representative of them all (same architecture,
        // same batch shape); collect it once while it is still alive.
        stats.graph = autograd::CollectGraphStats(loss);
        if (options.verbose) {
          ML_LOG(Info) << (adapting ? "adapt" : "pretrain") << " graph "
                       << stats.graph.ToString();
        }
      }

      backbone.module->ZeroGrad();
      ML_RETURN_IF_ERROR(autograd::Backward(loss));
      if (options.clip_norm > 0) {
        optim::ClipGradNorm(trainable, options.clip_norm);
      }
      optimizer.Step();

      loss_acc += loss.value().flat(0) * static_cast<double>(batch.size());
      seen += batch.size();
      const auto preds = metalora::ArgmaxRows(logits.value());
      for (size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == batch.labels[i]) ++correct;
      }
    }
    loader.Reshuffle();
    const double epoch_loss = loss_acc / static_cast<double>(seen);
    last_acc = static_cast<double>(correct) / static_cast<double>(seen);
    stats.epoch_losses.push_back(epoch_loss);
    if (options.verbose) {
      ML_LOG(Info) << (adapting ? "adapt" : "pretrain") << " epoch "
                   << (epoch + 1) << "/" << options.epochs << " loss "
                   << epoch_loss << " acc " << last_acc;
    }
  }
  stats.final_train_accuracy = last_acc;
  stats.seconds = timer.Seconds();
  if (options.step_arena) {
    stats.arena_hit_rate = arena_ctx.ArenaHitRate();
    stats.arena_pin_count = arena_ctx.pin_count();
    stats.arena_peak_bytes = step_arena.peak_bytes();
  }
  return stats;
}

// Merges shard sink `src` into `dst` — one edge of the reduction tree. Per
// parameter the combine is AddInPlace (or a move when dst has no entry,
// e.g. the parameter only saw samples on one side), so the float summation
// order per leaf is exactly the tree order over shard indices.
void MergeSinks(autograd::GradSink* dst, autograd::GradSink* src) {
  for (auto& [var, grad] : *src) {
    Tensor& d = (*dst)[var];
    if (!d.defined()) {
      d = std::move(grad);
    } else {
      AddInPlace(d, grad);
    }
  }
  src->clear();
}

// The shard-parallel loop. See train_loop.h for the replica model and
// TrainOptions (trainer.h) for the determinism contract.
Result<TrainStats> RunReplicated(Backbone& backbone,
                                 const data::MultiTaskDataset& train,
                                 const TrainOptions& options,
                                 AdaptContext* ctx) {
  const bool adapting = ctx != nullptr;
  const int shards = options.grad_shards;
  if (shards < 2) {
    return Status::InvalidArgument(
        "num_replicas > 1 requires grad_shards >= 2");
  }
  if (HasActiveDropout(backbone.module.get())) {
    return Status::InvalidArgument(
        "data-parallel training does not support active dropout: per-module "
        "Rng draws from concurrent shards would depend on interleaving");
  }

  std::vector<nn::Variable> trainable;
  for (auto* v : backbone.module->TrainableParameters()) trainable.push_back(*v);
  if (trainable.empty()) {
    return Status::FailedPrecondition("no trainable parameters");
  }

  optim::AdamOptions adam_opts;
  adam_opts.lr = options.lr;
  adam_opts.weight_decay = options.weight_decay;
  optim::Adam optimizer(trainable, adam_opts);

  data::DataLoader loader(train, options.batch_size, /*shuffle=*/true,
                          options.seed);

  if (adapting) ctx->injection.PrepareReplicas(shards);

  ThreadPool& pool =
      options.replica_pool != nullptr ? *options.replica_pool
                                      : GlobalThreadPool();
  const bool profiling = autograd::RuntimeContext::Current().profiling();

  // One context + one step arena per micro-shard, persistent across steps
  // (contexts keep cumulative telemetry, arenas keep their blocks warm).
  // Each shard is one deterministic single-threaded program: its lane runs
  // with the worker-inline guard set (ForkJoinReplicas), so every kernel
  // the shard issues stays on the lane's thread.
  std::vector<std::unique_ptr<autograd::RuntimeContext>> shard_ctxs;
  std::vector<std::unique_ptr<autograd::WorkspaceArena>> shard_arenas;
  for (int s = 0; s < shards; ++s) {
    auto rctx = std::make_unique<autograd::RuntimeContext>();
    rctx->set_profiling(profiling);
    rctx->set_replica_id(s);
    if (options.step_arena) {
      shard_arenas.push_back(std::make_unique<autograd::WorkspaceArena>());
      rctx->set_arena(shard_arenas.back().get());
      rctx->set_arena_serves_grad(true);
    }
    shard_ctxs.push_back(std::move(rctx));
  }

  TrainStats stats;
  Timer timer;
  double last_acc = 0.0;
  bool graph_collected = false;
  int64_t step = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double loss_acc = 0.0;
    int64_t seen = 0, correct = 0;
    for (int64_t b = 0; b < loader.num_batches(); ++b, ++step) {
      const int64_t batch_n =
          std::min<int64_t>(loader.dataset_size() - b * options.batch_size,
                            options.batch_size);
      // Elastic mode: lanes may join/leave between steps. Shards are fixed,
      // so the schedule moves work between threads without moving a single
      // float — trained parameters do not depend on it.
      int lanes = options.elastic_lanes ? options.elastic_lanes(step)
                                        : options.num_replicas;
      lanes = std::clamp(lanes, 1, shards);

      std::vector<autograd::GradSink> sinks(static_cast<size_t>(shards));
      std::vector<Status> shard_status(static_cast<size_t>(shards),
                                       Status::OK());
      std::vector<double> shard_loss(static_cast<size_t>(shards), 0.0);
      std::vector<int64_t> shard_n(static_cast<size_t>(shards), 0);
      std::vector<int64_t> shard_correct(static_cast<size_t>(shards), 0);
      const bool collect_graph = !graph_collected;

      pool.ForkJoinReplicas(lanes, [&](int lane) {
        for (int s = lane; s < shards; s += lanes) {
          int64_t lo = 0, hi = 0;
          data::ShardRange(batch_n, shards, s, &lo, &hi);
          shard_n[static_cast<size_t>(s)] = hi - lo;
          if (lo == hi) continue;  // short batch: this shard sits out

          autograd::RuntimeContext& rctx = *shard_ctxs[static_cast<size_t>(s)];
          if (options.step_arena) {
            shard_arenas[static_cast<size_t>(s)]->NextGeneration();
          }
          rctx.set_grad_sink(&sinks[static_cast<size_t>(s)]);
          autograd::RuntimeContextScope scope(&rctx);

          data::Batch shard = loader.GetBatchSlice(b, lo, hi);
          nn::Variable x(shard.images, /*requires_grad=*/false);
          if (adapting) {
            if (ctx->extractor != nullptr) {
              Tensor feats = ctx->extractor->Extract(shard.images);
              ctx->injection.BindFeatures(
                  nn::Variable(std::move(feats), /*requires_grad=*/false));
            }
            ctx->injection.BindTaskIds(shard.task_ids);
          }

          nn::Variable logits = backbone.forward_logits(x);
          nn::Variable loss =
              autograd::SoftmaxCrossEntropy(logits, shard.labels);
          if (collect_graph && s == 0) {
            stats.graph = autograd::CollectGraphStats(loss);
          }

          // Shard loss is the mean over its own rows; seeding backward with
          // n_s / n_b makes the tree-sum of shard gradients the gradient of
          // the full-batch mean loss.
          const float weight = static_cast<float>(hi - lo) /
                               static_cast<float>(batch_n);
          Tensor seed = Tensor::Full(loss.shape(), weight);
          shard_status[static_cast<size_t>(s)] =
              autograd::BackwardWithGrad(loss, seed);
          rctx.set_grad_sink(nullptr);

          shard_loss[static_cast<size_t>(s)] = loss.value().flat(0);
          const auto preds = metalora::ArgmaxRows(logits.value());
          for (size_t i = 0; i < preds.size(); ++i) {
            if (preds[i] == shard.labels[i]) {
              ++shard_correct[static_cast<size_t>(s)];
            }
          }
        }
      });

      for (const Status& st : shard_status) ML_RETURN_IF_ERROR(st);
      if (collect_graph) {
        graph_collected = true;
        if (options.verbose) {
          ML_LOG(Info) << (adapting ? "adapt" : "pretrain") << " shard graph "
                       << stats.graph.ToString();
        }
      }

      // Fixed binary-tree reduction over shard index: stride doubling,
      // sink[s] += sink[s + stride]. The same tree for every step, every
      // lane count, every machine — this order IS the determinism contract.
      for (int stride = 1; stride < shards; stride *= 2) {
        for (int s = 0; s + stride < shards; s += 2 * stride) {
          MergeSinks(&sinks[static_cast<size_t>(s)],
                     &sinks[static_cast<size_t>(s + stride)]);
        }
      }

      // Join point: hand the reduced gradients to the optimizer in its
      // stable parameter order. One global clip, one Step, one parameter-
      // version bump — per step, not per replica.
      std::vector<Tensor> reduced(trainable.size());
      autograd::GradSink& total = sinks[0];
      for (size_t i = 0; i < trainable.size(); ++i) {
        auto it = total.find(trainable[i].impl().get());
        if (it != total.end()) reduced[i] = std::move(it->second);
      }
      optimizer.AccumulateAndStep(std::move(reduced), options.clip_norm);

      for (int s = 0; s < shards; ++s) {
        loss_acc += shard_loss[static_cast<size_t>(s)] *
                    static_cast<double>(shard_n[static_cast<size_t>(s)]);
        correct += shard_correct[static_cast<size_t>(s)];
      }
      seen += batch_n;
    }
    loader.Reshuffle();
    const double epoch_loss = loss_acc / static_cast<double>(seen);
    last_acc = static_cast<double>(correct) / static_cast<double>(seen);
    stats.epoch_losses.push_back(epoch_loss);
    if (options.verbose) {
      ML_LOG(Info) << (adapting ? "adapt" : "pretrain") << " epoch "
                   << (epoch + 1) << "/" << options.epochs << " loss "
                   << epoch_loss << " acc " << last_acc;
    }
  }
  stats.final_train_accuracy = last_acc;
  stats.seconds = timer.Seconds();
  if (options.step_arena) {
    int64_t arena_served = 0, heap_served = 0, pins = 0, peak = 0;
    for (int s = 0; s < shards; ++s) {
      arena_served += shard_ctxs[static_cast<size_t>(s)]->arena_served();
      heap_served += shard_ctxs[static_cast<size_t>(s)]->heap_served();
      pins += shard_ctxs[static_cast<size_t>(s)]->pin_count();
      peak = std::max(peak,
                      shard_arenas[static_cast<size_t>(s)]->peak_bytes());
    }
    const int64_t alloc_total = arena_served + heap_served;
    stats.arena_hit_rate =
        alloc_total > 0
            ? static_cast<double>(arena_served) /
                  static_cast<double>(alloc_total)
            : 0.0;
    stats.arena_pin_count = pins;
    stats.arena_peak_bytes = peak;
  }
  return stats;
}

}  // namespace

Result<TrainStats> TrainLoop(Backbone& backbone,
                             const data::MultiTaskDataset& train,
                             const TrainOptions& options, AdaptContext* ctx) {
  if (train.size() == 0) {
    return Status::InvalidArgument("training dataset is empty");
  }
  if (options.epochs < 1 || options.batch_size < 1) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }
  if (options.num_replicas < 1) {
    return Status::InvalidArgument("num_replicas must be >= 1");
  }

  const bool adapting = ctx != nullptr;
  // Pre-training uses train mode (live batch-norm); adaptation freezes the
  // backbone statistics by staying in eval mode.
  backbone.module->SetTraining(!adapting);

  return options.num_replicas == 1
             ? RunSingle(backbone, train, options, ctx)
             : RunReplicated(backbone, train, options, ctx);
}

}  // namespace eval
}  // namespace metalora
