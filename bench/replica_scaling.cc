// Data-parallel replica scaling: step throughput vs lane count, with the
// determinism contract asserted, not just reported.
//
// The same pre-training workload (tiny ResNet, synthetic multi-class
// images, identical seeds) runs at num_replicas = 1, 2, 4. Contracts:
//   * N=2 and N=4 train bit-identical parameters (same grad_shards grid,
//     same binary-tree reduction — lane count is scheduling only);
//   * N=4 repeated gives bit-identical parameters (run determinism);
//   * an elastic lane schedule matches the fixed schedule bit-for-bit;
//   * on machines with >= 4 cores, N=4 achieves >= 2x the N=1 step
//     throughput (skipped otherwise — a 1-core box can't parallelize).
// N=1 is the legacy single-replica program and is *expected* to differ
// numerically from the sharded grid; it is the throughput baseline only.
//
// Writes BENCH_replicas.json; exits nonzero if any contract fails.
// --smoke shrinks the workload and skips the timing contract (CI).
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "data/task_suite.h"
#include "eval/trainer.h"

using namespace metalora;  // NOLINT

namespace {

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

bool StatesBitIdentical(const std::map<std::string, Tensor>& a,
                        const std::map<std::string, Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [name, t] : a) {
    auto it = b.find(name);
    if (it == b.end() || !BitIdentical(t, it->second)) return false;
  }
  return true;
}

struct RunResult {
  double steps_per_sec = 0.0;
  std::map<std::string, Tensor> state;
};

struct Workload {
  int64_t count = 256;
  int64_t batch_size = 32;
  int epochs = 2;
  int reps = 3;
  int base_width = 8;
};

RunResult RunWorkload(const Workload& w, int num_replicas, ThreadPool* pool,
                      std::function<int(int64_t)> elastic = nullptr) {
  data::ImageSpec spec{3, 16, 16};
  data::SyntheticImageGenerator gen(spec, 4);
  data::MultiTaskDataset data = data::MakeBaseDataset(gen, w.count, 2);

  RunResult res;
  for (int r = 0; r < w.reps; ++r) {
    nn::ResNetConfig cfg;
    cfg.base_width = w.base_width;
    cfg.num_classes = 4;
    cfg.seed = 1;
    eval::Backbone bb = eval::MakeResNetBackbone(cfg);

    eval::TrainOptions opts;
    opts.epochs = w.epochs;
    opts.batch_size = w.batch_size;
    opts.seed = 11;
    opts.num_replicas = num_replicas;
    opts.replica_pool = pool;
    opts.elastic_lanes = elastic;

    auto stats = eval::PretrainBackbone(bb, data, opts);
    if (!stats.ok()) {
      std::cerr << "FAIL: training failed: " << stats.status().ToString()
                << "\n";
      std::exit(1);
    }
    const int64_t batches = (w.count + w.batch_size - 1) / w.batch_size;
    const double steps =
        static_cast<double>(batches) * static_cast<double>(w.epochs);
    const double sps = steps / stats->seconds;
    // Best-of-reps: one descheduled rep must not flip the scaling verdict.
    if (sps > res.steps_per_sec) res.steps_per_sec = sps;
    if (r == 0) {
      res.state = bb.module->StateDict();
    } else if (!StatesBitIdentical(res.state, bb.module->StateDict())) {
      std::cerr << "FAIL: N=" << num_replicas
                << " rep " << r << " trained different bits than rep 0\n";
      std::exit(1);
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  Workload w;
  if (smoke) {
    w.count = 48;
    w.batch_size = 16;
    w.epochs = 1;
    w.reps = 2;
    w.base_width = 4;
  }

  const unsigned hc = std::thread::hardware_concurrency();
  // 4 lanes want 4 concurrent threads: 3 workers + the caller.
  ThreadPool pool(hc >= 4 ? 3 : (hc > 1 ? static_cast<int>(hc) - 1 : 0));

  std::cout << "=== Replica scaling: deterministic tree all-reduce ===\n"
            << "hardware_concurrency=" << hc << (smoke ? " (smoke)" : "")
            << "\n\n";

  RunResult n1 = RunWorkload(w, 1, &pool);
  RunResult n2 = RunWorkload(w, 2, &pool);
  RunResult n4 = RunWorkload(w, 4, &pool);
  RunResult elastic = RunWorkload(w, 2, &pool, [](int64_t step) {
    return static_cast<int>(step % 4) + 1;  // 1..4 lanes, changing every step
  });

  const bool lanes_identical = StatesBitIdentical(n2.state, n4.state);
  const bool elastic_identical = StatesBitIdentical(n2.state, elastic.state);
  const double speedup_n2 = n2.steps_per_sec / n1.steps_per_sec;
  const double speedup_n4 = n4.steps_per_sec / n1.steps_per_sec;

  TablePrinter table("pre-training step throughput vs replica lanes");
  table.SetHeader({"lanes", "steps/s", "speedup vs N=1"});
  table.AddRow({"1 (legacy)", std::to_string(n1.steps_per_sec), "1.0"});
  table.AddRow({"2", std::to_string(n2.steps_per_sec),
                std::to_string(speedup_n2)});
  table.AddRow({"4", std::to_string(n4.steps_per_sec),
                std::to_string(speedup_n4)});
  table.AddRow({"elastic 1-4", std::to_string(elastic.steps_per_sec), "-"});
  table.Print(std::cout);
  std::cout << "\n";

  bool ok = true;
  if (!lanes_identical) {
    std::cout << "FAIL: N=2 and N=4 trained different parameter bits\n";
    ok = false;
  }
  if (!elastic_identical) {
    std::cout << "FAIL: elastic schedule trained different bits than fixed\n";
    ok = false;
  }
  const bool throughput_checked = !smoke && hc >= 4;
  if (throughput_checked && speedup_n4 < 2.0) {
    std::cout << "FAIL: N=4 speedup " << speedup_n4
              << "x below the required 2x over N=1\n";
    ok = false;
  }
  if (ok) {
    std::cout << "OK: lane-count and elastic schedules bit-identical, runs "
                 "deterministic"
              << (throughput_checked
                      ? ", N=4 >= 2x N=1 throughput\n"
                      : (smoke ? " (smoke: timing contract skipped)\n"
                               : " (timing contract skipped: < 4 cores)\n"));
  }

  // Smoke runs shrink the workload until timings are noise: emit null for
  // every unmeasured rate instead of a real-looking number (the identity
  // contracts above are still exact and still gate the exit code).
  auto rate_or_null = [smoke](double v) {
    return smoke ? std::string("null") : std::to_string(v);
  };
  std::ofstream json("BENCH_replicas.json");
  json << "{\n"
       << "  \"hardware_concurrency\": " << hc << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"steps_per_sec\": {\"n1\": " << rate_or_null(n1.steps_per_sec)
       << ", \"n2\": " << rate_or_null(n2.steps_per_sec)
       << ", \"n4\": " << rate_or_null(n4.steps_per_sec)
       << ", \"elastic\": " << rate_or_null(elastic.steps_per_sec) << "},\n"
       << "  \"speedup\": {\"n2\": " << rate_or_null(speedup_n2)
       << ", \"n4\": " << rate_or_null(speedup_n4) << "},\n"
       << "  \"lane_count_bit_identical\": "
       << (lanes_identical ? "true" : "false") << ",\n"
       << "  \"elastic_bit_identical\": "
       << (elastic_identical ? "true" : "false") << ",\n"
       << "  \"throughput_contract_checked\": "
       << (throughput_checked ? "true" : "false") << ",\n"
       << "  \"ok\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote BENCH_replicas.json\n";
  return ok ? 0 : 1;
}
