#include "tensor/conv_ops.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/matmul.h"
#include "tensor/tensor_ops.h"

namespace metalora {

void Im2Col(const float* input, int64_t channels, int64_t h, int64_t w,
            const ConvGeom& g, float* columns) {
  const int64_t ho = g.OutExtent(h, g.kernel_h);
  const int64_t wo = g.OutExtent(w, g.kernel_w);
  const int64_t out_spatial = ho * wo;
  // Row r of `columns` corresponds to (c, kh, kw); column to (oh, ow).
  // Channel c owns rows [c·Kh·Kw, (c+1)·Kh·Kw): writes are disjoint per
  // channel, so channels fan out onto the pool.
  ParallelFor(0, channels, 1, [=, &g](int64_t c_lo, int64_t c_hi) {
    for (int64_t c = c_lo; c < c_hi; ++c) {
      const float* chan = input + c * h * w;
      int64_t row = c * g.kernel_h * g.kernel_w;
      for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
        for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
          float* out_row = columns + row * out_spatial;
          for (int64_t oh = 0; oh < ho; ++oh) {
            const int64_t ih = oh * g.stride + kh - g.padding;
            if (ih < 0 || ih >= h) {
              std::memset(out_row + oh * wo, 0,
                          sizeof(float) * static_cast<size_t>(wo));
              continue;
            }
            const float* in_row = chan + ih * w;
            for (int64_t ow = 0; ow < wo; ++ow) {
              const int64_t iw = ow * g.stride + kw - g.padding;
              out_row[oh * wo + ow] =
                  (iw >= 0 && iw < w) ? in_row[iw] : 0.0f;
            }
          }
        }
      }
    }
  });
}

void Col2Im(const float* columns, int64_t channels, int64_t h, int64_t w,
            const ConvGeom& g, float* input_grad) {
  const int64_t ho = g.OutExtent(h, g.kernel_h);
  const int64_t wo = g.OutExtent(w, g.kernel_w);
  const int64_t out_spatial = ho * wo;
  // Kernel positions of one channel overlap in the input plane, but the
  // channels themselves write disjoint planes: channel c accumulates only
  // into input_grad[c·h·w, (c+1)·h·w) from its own row block. Within a
  // channel the accumulation order is the serial order, so results are
  // bit-identical to a serial pass for any thread count.
  ParallelFor(0, channels, 1, [=, &g](int64_t c_lo, int64_t c_hi) {
    for (int64_t c = c_lo; c < c_hi; ++c) {
      float* chan = input_grad + c * h * w;
      int64_t row = c * g.kernel_h * g.kernel_w;
      for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
        for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
          const float* in_row = columns + row * out_spatial;
          for (int64_t oh = 0; oh < ho; ++oh) {
            const int64_t ih = oh * g.stride + kh - g.padding;
            if (ih < 0 || ih >= h) continue;
            for (int64_t ow = 0; ow < wo; ++ow) {
              const int64_t iw = ow * g.stride + kw - g.padding;
              if (iw >= 0 && iw < w) chan[ih * w + iw] += in_row[oh * wo + ow];
            }
          }
        }
      }
    }
  });
}

void Conv2dForwardInto(const Tensor& input, const Tensor& weight,
                       const Tensor& bias, const ConvGeom& g, Tensor* out,
                       OpPrecision precision) {
  std::vector<float> columns;
  Conv2dForwardInto(input, weight, bias, g, out, precision, &columns);
}

void Conv2dForwardInto(const Tensor& input, const Tensor& weight,
                       const Tensor& bias, const ConvGeom& g, Tensor* out,
                       OpPrecision precision, std::vector<float>* scratch) {
  ML_CHECK_EQ(input.rank(), 4);
  ML_CHECK_EQ(weight.rank(), 4);
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int64_t o = weight.dim(0);
  ML_CHECK_EQ(weight.dim(1), c) << "Conv2dForward: channel mismatch";
  ML_CHECK_EQ(weight.dim(2), g.kernel_h);
  ML_CHECK_EQ(weight.dim(3), g.kernel_w);
  const int64_t ho = g.OutExtent(h, g.kernel_h);
  const int64_t wo = g.OutExtent(w, g.kernel_w);
  ML_CHECK(ho > 0 && wo > 0) << "Conv2dForward: empty output";
  ML_CHECK((out->shape() == Shape{n, o, ho, wo}));
  if (bias.defined()) {
    ML_CHECK_EQ(bias.rank(), 1);
    ML_CHECK_EQ(bias.dim(0), o);
  }

  const int64_t col_rows = c * g.kernel_h * g.kernel_w;
  const int64_t col_cols = ho * wo;
  if (static_cast<int64_t>(scratch->size()) < col_rows * col_cols) {
    scratch->resize(static_cast<size_t>(col_rows * col_cols));
  }
  std::vector<float>& columns = *scratch;

  // weight viewed as [O, C*Kh*Kw]; per-sample: out_n = W_mat · cols.
  const float* wmat = weight.data();
  for (int64_t i = 0; i < n; ++i) {
    Im2Col(input.data() + i * c * h * w, c, h, w, g, columns.data());
    float* out_n = out->data() + i * o * col_cols;
    // out_n is zero-initialized by the caller's allocation.
    if (precision == OpPrecision::kFp32) {
      MatmulAccumulateRaw(wmat, columns.data(), out_n, o, col_rows, col_cols);
    } else {
      // bf16 tier (int8 requests land here too: conv caps at bf16).
      GemmPackedBf16(wmat, false, columns.data(), false, out_n, o, col_rows,
                     col_cols, /*accumulate=*/true);
    }
    if (bias.defined()) {
      const float* pb = bias.data();
      for (int64_t oc = 0; oc < o; ++oc) {
        float* plane = out_n + oc * col_cols;
        const float bv = pb[oc];
        for (int64_t s = 0; s < col_cols; ++s) plane[s] += bv;
      }
    }
  }
}

Tensor Conv2dForward(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, const ConvGeom& g) {
  const int64_t ho = g.OutExtent(input.dim(2), g.kernel_h);
  const int64_t wo = g.OutExtent(input.dim(3), g.kernel_w);
  Tensor out{Shape{input.dim(0), weight.dim(0), ho, wo}};
  Conv2dForwardInto(input, weight, bias, g, &out);
  return out;
}

void Conv2dBackward(const Tensor& input, const Tensor& weight,
                    const Tensor& grad_output, const ConvGeom& g,
                    Tensor* grad_input, Tensor* grad_weight, Tensor* grad_bias,
                    bool has_bias) {
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int64_t o = weight.dim(0);
  const int64_t ho = g.OutExtent(h, g.kernel_h);
  const int64_t wo = g.OutExtent(w, g.kernel_w);
  ML_CHECK_EQ(grad_output.dim(0), n);
  ML_CHECK_EQ(grad_output.dim(1), o);
  ML_CHECK_EQ(grad_output.dim(2), ho);
  ML_CHECK_EQ(grad_output.dim(3), wo);

  const int64_t col_rows = c * g.kernel_h * g.kernel_w;
  const int64_t col_cols = ho * wo;

  if (grad_input) *grad_input = Tensor::Zeros(input.shape());
  if (grad_weight) *grad_weight = Tensor::Zeros(weight.shape());
  if (grad_bias && has_bias) *grad_bias = Tensor::Zeros(Shape{o});

  std::vector<float> columns(static_cast<size_t>(col_rows * col_cols));
  std::vector<float> col_grad(static_cast<size_t>(col_rows * col_cols));

  const float* wmat = weight.data();  // [o, col_rows]
  for (int64_t i = 0; i < n; ++i) {
    const float* gout = grad_output.data() + i * o * col_cols;

    if (grad_weight) {
      // dW [o, col_rows] += gout [o, S] · colsᵀ (cols stored [col_rows, S]).
      Im2Col(input.data() + i * c * h * w, c, h, w, g, columns.data());
      GemmPacked(gout, /*trans_a=*/false, columns.data(), /*trans_b=*/true,
                 grad_weight->data(), o, col_cols, col_rows,
                 /*accumulate=*/true);
    }

    if (grad_input) {
      // col_grad [col_rows, S] = Wᵀ (W stored [o, col_rows]) · gout [o, S].
      GemmPacked(wmat, /*trans_a=*/true, gout, /*trans_b=*/false,
                 col_grad.data(), col_rows, o, col_cols,
                 /*accumulate=*/false);
      Col2Im(col_grad.data(), c, h, w, g,
             grad_input->data() + i * c * h * w);
    }

    if (grad_bias && has_bias) {
      float* gb = grad_bias->data();
      for (int64_t oc = 0; oc < o; ++oc) {
        const float* grow = gout + oc * col_cols;
        float acc = 0.0f;
        for (int64_t s = 0; s < col_cols; ++s) acc += grow[s];
        gb[oc] += acc;
      }
    }
  }
}

Tensor Conv2dDirect(const Tensor& input, const Tensor& weight,
                    const Tensor& bias, const ConvGeom& g) {
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int64_t o = weight.dim(0);
  const int64_t ho = g.OutExtent(h, g.kernel_h);
  const int64_t wo = g.OutExtent(w, g.kernel_w);
  Tensor out{Shape{n, o, ho, wo}};
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t oc = 0; oc < o; ++oc) {
      for (int64_t oh = 0; oh < ho; ++oh) {
        for (int64_t ow = 0; ow < wo; ++ow) {
          double acc = bias.defined() ? bias.flat(oc) : 0.0;
          for (int64_t ic = 0; ic < c; ++ic) {
            for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
              const int64_t ih = oh * g.stride + kh - g.padding;
              if (ih < 0 || ih >= h) continue;
              for (int64_t kw = 0; kw < g.kernel_w; ++kw) {
                const int64_t iw = ow * g.stride + kw - g.padding;
                if (iw < 0 || iw >= w) continue;
                acc += static_cast<double>(
                           input.flat(((i * c + ic) * h + ih) * w + iw)) *
                       weight.flat(((oc * c + ic) * g.kernel_h + kh) *
                                       g.kernel_w +
                                   kw);
              }
            }
          }
          out.flat(((i * o + oc) * ho + oh) * wo + ow) =
              static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

void MaxPool2dInto(const Tensor& input, const ConvGeom& g,
                   std::vector<int64_t>* argmax, Tensor* out) {
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int64_t ho = g.OutExtent(h, g.kernel_h);
  const int64_t wo = g.OutExtent(w, g.kernel_w);
  ML_CHECK((out->shape() == Shape{n, c, ho, wo}));
  if (argmax) argmax->assign(static_cast<size_t>(out->numel()), -1);
  const float* pin = input.data();
  float* pout = out->data();
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = pin + (i * c + ch) * h * w;
      for (int64_t oh = 0; oh < ho; ++oh) {
        for (int64_t ow = 0; ow < wo; ++ow, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_off = -1;
          for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
            const int64_t ih = oh * g.stride + kh - g.padding;
            if (ih < 0 || ih >= h) continue;
            for (int64_t kw = 0; kw < g.kernel_w; ++kw) {
              const int64_t iw = ow * g.stride + kw - g.padding;
              if (iw < 0 || iw >= w) continue;
              const float v = plane[ih * w + iw];
              if (v > best) {
                best = v;
                best_off = (i * c + ch) * h * w + ih * w + iw;
              }
            }
          }
          ML_DCHECK(best_off >= 0);
          pout[out_idx] = best;
          if (argmax) (*argmax)[static_cast<size_t>(out_idx)] = best_off;
        }
      }
    }
  }
}

Tensor MaxPool2d(const Tensor& input, const ConvGeom& g,
                 std::vector<int64_t>* argmax) {
  const int64_t ho = g.OutExtent(input.dim(2), g.kernel_h);
  const int64_t wo = g.OutExtent(input.dim(3), g.kernel_w);
  Tensor out{Shape{input.dim(0), input.dim(1), ho, wo}};
  MaxPool2dInto(input, g, argmax, &out);
  return out;
}

Tensor MaxPool2dBackward(const Tensor& grad_output, const Shape& input_shape,
                         const std::vector<int64_t>& argmax) {
  ML_CHECK_EQ(static_cast<int64_t>(argmax.size()), grad_output.numel());
  Tensor grad_input{input_shape};
  const float* pg = grad_output.data();
  float* pi = grad_input.data();
  for (int64_t i = 0, n = grad_output.numel(); i < n; ++i) {
    pi[argmax[static_cast<size_t>(i)]] += pg[i];
  }
  return grad_input;
}

void AvgPool2dInto(const Tensor& input, const ConvGeom& g, Tensor* out) {
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int64_t ho = g.OutExtent(h, g.kernel_h);
  const int64_t wo = g.OutExtent(w, g.kernel_w);
  const float inv = 1.0f / static_cast<float>(g.kernel_h * g.kernel_w);
  ML_CHECK((out->shape() == Shape{n, c, ho, wo}));
  const float* pin = input.data();
  float* pout = out->data();
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = pin + (i * c + ch) * h * w;
      for (int64_t oh = 0; oh < ho; ++oh) {
        for (int64_t ow = 0; ow < wo; ++ow, ++out_idx) {
          float acc = 0.0f;
          for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
            const int64_t ih = oh * g.stride + kh - g.padding;
            if (ih < 0 || ih >= h) continue;
            for (int64_t kw = 0; kw < g.kernel_w; ++kw) {
              const int64_t iw = ow * g.stride + kw - g.padding;
              if (iw < 0 || iw >= w) continue;
              acc += plane[ih * w + iw];
            }
          }
          pout[out_idx] = acc * inv;
        }
      }
    }
  }
}

Tensor AvgPool2d(const Tensor& input, const ConvGeom& g) {
  const int64_t ho = g.OutExtent(input.dim(2), g.kernel_h);
  const int64_t wo = g.OutExtent(input.dim(3), g.kernel_w);
  Tensor out{Shape{input.dim(0), input.dim(1), ho, wo}};
  AvgPool2dInto(input, g, &out);
  return out;
}

Tensor AvgPool2dBackward(const Tensor& grad_output, const Shape& input_shape,
                         const ConvGeom& g) {
  const int64_t n = input_shape.dim(0), c = input_shape.dim(1),
                h = input_shape.dim(2), w = input_shape.dim(3);
  const int64_t ho = g.OutExtent(h, g.kernel_h);
  const int64_t wo = g.OutExtent(w, g.kernel_w);
  const float inv = 1.0f / static_cast<float>(g.kernel_h * g.kernel_w);
  Tensor grad_input{input_shape};
  const float* pg = grad_output.data();
  float* pi = grad_input.data();
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* plane = pi + (i * c + ch) * h * w;
      for (int64_t oh = 0; oh < ho; ++oh) {
        for (int64_t ow = 0; ow < wo; ++ow, ++out_idx) {
          const float gv = pg[out_idx] * inv;
          for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
            const int64_t ih = oh * g.stride + kh - g.padding;
            if (ih < 0 || ih >= h) continue;
            for (int64_t kw = 0; kw < g.kernel_w; ++kw) {
              const int64_t iw = ow * g.stride + kw - g.padding;
              if (iw < 0 || iw >= w) continue;
              plane[ih * w + iw] += gv;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

void GlobalAvgPoolInto(const Tensor& input, Tensor* out) {
  ML_CHECK_EQ(input.rank(), 4);
  const int64_t n = input.dim(0), c = input.dim(1),
                spatial = input.dim(2) * input.dim(3);
  const float inv = 1.0f / static_cast<float>(spatial);
  ML_CHECK((out->shape() == Shape{n, c}));
  const float* pin = input.data();
  float* pout = out->data();
  for (int64_t i = 0; i < n * c; ++i) {
    const float* plane = pin + i * spatial;
    float acc = 0.0f;
    for (int64_t s = 0; s < spatial; ++s) acc += plane[s];
    pout[i] = acc * inv;
  }
}

Tensor GlobalAvgPool(const Tensor& input) {
  Tensor out{Shape{input.dim(0), input.dim(1)}};
  GlobalAvgPoolInto(input, &out);
  return out;
}

Tensor GlobalAvgPoolBackward(const Tensor& grad_output,
                             const Shape& input_shape) {
  const int64_t n = input_shape.dim(0), c = input_shape.dim(1),
                spatial = input_shape.dim(2) * input_shape.dim(3);
  const float inv = 1.0f / static_cast<float>(spatial);
  Tensor grad_input{input_shape};
  const float* pg = grad_output.data();
  float* pi = grad_input.data();
  for (int64_t i = 0; i < n * c; ++i) {
    const float gv = pg[i] * inv;
    float* plane = pi + i * spatial;
    for (int64_t s = 0; s < spatial; ++s) plane[s] = gv;
  }
  return grad_input;
}

}  // namespace metalora
