# Empty dependencies file for personalized_recsys.
# This may be replaced when dependencies are built.
