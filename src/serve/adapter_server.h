// In-process batched adaptation server for MetaLoRA adapters.
//
// PR 4 made a single no-grad MetaLoRA forward cheap (conditioning-keyed
// ΔW/seed cache + workspace arenas); this layer makes *many concurrent*
// forwards cheap by coalescing them. The pipeline:
//
//   clients --Submit--> [bounded request queue]      (backpressure: Push
//                             |                       blocks when full)
//                       micro-batcher thread          groups per session,
//                             |                       flushes on max batch
//                       [bounded batch queue]         size or a deadline
//                             |
//                       worker threads                per-worker arena +
//                             |                       no-grad RuntimeContext;
//                       per-request promises          per-session forwards
//
// Requests against one session (one adapter) are concatenated along dim 0
// (eval/batch_assembly.h), run as one adapter Forward, and split back per
// request. Every op on the eval path is row-wise / per-sample, so batched
// outputs are bit-identical to one-at-a-time execution — the serving tests
// and bench assert it.
//
// Two cache levels serve a warm request without touching the mapping net:
//  - the adapters' own ConditioningCache (keyed on the batch's feature
//    tensor), shared across whatever batch compositions recur, and
//  - a serve-level result cache reusing core::ConditioningCache with the
//    request's packed (features, x) bytes as the key and the output rows as
//    the payload. Hits skip the forward entirely; parameter-version
//    invalidation (optimizer Step()) applies to both levels, as does the
//    before-compute version capture that keeps a Step() landing mid-forward
//    from stamping stale bytes.
//
// Shutdown is drain-based: Shutdown() closes the request queue, the
// batcher flushes everything it holds, the workers finish every queued
// batch, and only then do the threads exit — every accepted request's
// future is fulfilled. Submits that race past Close() resolve to an
// undefined Tensor (and count as rejected).
#ifndef METALORA_SERVE_ADAPTER_SERVER_H_
#define METALORA_SERVE_ADAPTER_SERVER_H_

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bounded_queue.h"
#include "core/adapter_config.h"
#include "core/conditioning_cache.h"
#include "serve/adapter_registry.h"
#include "serve/plan_cache.h"
#include "serve/serve_stats.h"
#include "tensor/autocast.h"
#include "tensor/tensor.h"

namespace metalora {
namespace serve {

struct AdapterServerOptions {
  /// Rows per batch at which the micro-batcher flushes immediately.
  int64_t max_batch_size = 8;
  /// Oldest-request age at which a partial batch is flushed anyway.
  int64_t flush_deadline_us = 2000;
  /// Worker threads executing batches. Batches from different sessions run
  /// concurrently; a session's forwards are serialized (adapters bind
  /// features statefully via SetFeatures).
  int num_workers = 2;
  /// Request-queue bound: Submit blocks (TrySubmit fails) beyond this.
  int64_t queue_capacity = 64;
  /// Assembled-batch queue bound between the batcher and the workers.
  int64_t batch_queue_capacity = 16;
  /// Serve-level (features, x) -> output-rows cache; 0 entries disables it.
  int64_t result_cache_entries = 1024;
  /// Autocast policy installed on every worker's RuntimeContext (workers
  /// run no-grad, so the policy actually takes effect). Default-disabled:
  /// all forwards fp32, byte-identical to pre-tier behavior. Set to
  /// AutocastPolicy::Serving(precision) for the low-precision serving
  /// path; pair int8 with a registry whose register_precision_shadows is
  /// on, or the Linear facade downgrades int8 -> bf16 (no prepacked
  /// scales). Per-precision dispatch counts land in ServeStats.
  AutocastPolicy autocast;
  /// Compile each (adapter, shapes) no-grad forward into a serving plan on
  /// its first warm batch and serve later same-shape batches by direct
  /// plan execution: ordered kernel calls with fused elementwise chains
  /// over a preplanned pool — no dispatch, no shape inference, no tensor
  /// allocation (serve/plan.h). Plan output is bit-identical to the
  /// dynamic path; plans retire on parameter-version bumps (optimizer
  /// Step, registry Publish) and fall back to the dynamic graph on shape
  /// or conditioning-cache misses and on unsupported graphs.
  bool enable_plans = false;
  /// Per-session plan cache bound (positive + negative entries, FIFO).
  int64_t plan_cache_entries = 32;
  /// Test hook: runs on the worker thread before each batch executes.
  /// Lets tests stall the pipeline deterministically (backpressure,
  /// shutdown-with-in-flight coverage). Leave empty in production.
  std::function<void()> worker_batch_hook;
};

class AdapterServer {
 public:
  explicit AdapterServer(AdapterServerOptions options);
  ~AdapterServer();  // implies Shutdown()

  AdapterServer(const AdapterServer&) = delete;
  AdapterServer& operator=(const AdapterServer&) = delete;

  /// Registers an adapter-backed model and returns its session id. The
  /// adapter must outlive the server. Call before Start(). Pass the
  /// adapter's conditioning cache (e.g. MetaLoraCpLinear::
  /// conditioning_cache()) so stats() can fold its hit/miss/eviction
  /// counters into the snapshot; nullptr skips that accounting.
  int RegisterSession(core::Adapter* adapter,
                      core::ConditioningCache* adapter_cache = nullptr);

  /// Registers a registry-backed session: the adapter is resolved through
  /// `registry->Acquire(tenant)` per batch, so it is loaded lazily on the
  /// first request, may be evicted and reloaded between batches, and can be
  /// hot-swapped by a concurrent Publish with no downtime (each batch runs
  /// to completion on the version snapshot it acquired). The registry must
  /// outlive the server; `tenant` need not be registered yet at call time,
  /// but requests fail (undefined Tensor, requests_failed) until it is.
  /// Call before Start().
  int RegisterTenantSession(AdapterRegistry* registry,
                            const std::string& tenant);

  /// Launches the batcher and worker threads.
  void Start();

  /// Enqueues one request: conditioning features [n, feature_dim] paired
  /// row-for-row with input x ([n, in] linear / [n, C, H, W] conv; n is
  /// almost always 1 in serving). Blocks while the request queue is full
  /// (backpressure). The future resolves to the adapter output rows for x,
  /// or to an undefined Tensor if the server was already shut down.
  std::future<Tensor> Submit(int session_id, Tensor features, Tensor x);

  /// Non-blocking Submit: false when the queue is full or the server is
  /// shut down (counted as rejected; *out is untouched).
  bool TrySubmit(int session_id, Tensor features, Tensor x,
                 std::future<Tensor>* out);

  /// Drains and stops the pipeline; idempotent. Every request accepted
  /// before the call completes with a real result.
  void Shutdown();

  /// Snapshot of the pipeline counters (see serve_stats.h). Adapter-cache
  /// totals are re-read from the sessions at call time.
  ServeStats stats() const;

 private:
  struct Request {
    int session_id = 0;
    Tensor features;
    Tensor x;
    std::shared_ptr<std::promise<Tensor>> promise;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  struct Batch {
    int session_id = 0;
    bool drain = false;  // assembled during shutdown (stats only)
    std::vector<Request> requests;
  };

  struct Session {
    /// Static sessions: the adapter served for the session's lifetime.
    /// Null for registry-backed sessions, which resolve per batch.
    core::Adapter* adapter = nullptr;
    /// The adapter's own ΔW/seed cache, for stats aggregation only.
    core::ConditioningCache* adapter_cache = nullptr;
    /// Registry-backed sessions: where and what to Acquire per batch.
    AdapterRegistry* registry = nullptr;
    std::string tenant;
    /// Serializes SetFeatures + Forward (the adapter binds features
    /// statefully) across workers. Static sessions only — registry-backed
    /// batches use the acquired handle's forward_mu, which is per version.
    std::mutex forward_mu;
    /// Serve-level result cache: packed (features, x) bytes -> output rows.
    std::unique_ptr<core::ConditioningCache> result_cache;
    uint64_t result_salt = 0;
    /// Compiled plans for this session (enable_plans only). Shared across
    /// workers; each worker keeps its own PlanBinding per plan.
    std::unique_ptr<PlanCache> plan_cache;
  };

  /// Worker-local executable instances of shared plans, keyed by plan
  /// identity. Bounded: wholesale-cleared when it outgrows the caches.
  using PlanBindingMap =
      std::unordered_map<const CompiledPlan*, std::unique_ptr<PlanBinding>>;

  void BatcherLoop();
  void WorkerLoop();
  void ExecuteBatch(Batch batch, PlanBindingMap* bindings);
  void FlushPending(std::vector<Request>* pending, bool drain,
                    int64_t* flush_counter);
  void CompleteRequest(Request* request, Tensor result);
  void FailRequests(std::vector<Request>* requests);

  AdapterServerOptions options_;
  std::vector<std::unique_ptr<Session>> sessions_;
  BoundedQueue<Request> request_queue_;
  BoundedQueue<Batch> batch_queue_;
  std::thread batcher_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mu_;

  mutable std::mutex stats_mu_;
  ServeStats stats_;
};

}  // namespace serve
}  // namespace metalora

#endif  // METALORA_SERVE_ADAPTER_SERVER_H_
