// Finite-difference gradient verification for differentiable ops.
//
// Property tests wrap each op in a scalar-valued function and assert that
// analytic gradients match central finite differences within float32
// tolerances. This is the master correctness oracle for the autograd layer.
#ifndef METALORA_AUTOGRAD_GRADCHECK_H_
#define METALORA_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "common/result.h"

namespace metalora {
namespace autograd {

/// A function building a scalar Variable from leaf inputs.
using ScalarFn = std::function<Variable(const std::vector<Variable>&)>;

struct GradCheckOptions {
  double eps = 1e-2;        // central-difference step
  double rel_tol = 5e-2;    // max allowed relative error
  double abs_tol = 5e-3;    // absolute slack for near-zero gradients
  int max_elements = 64;    // elements checked per input (prefix)
};

struct GradCheckReport {
  bool passed = false;
  double max_rel_error = 0.0;
  int worst_input = -1;
  int64_t worst_element = -1;
  double analytic = 0.0;
  double numeric = 0.0;
};

/// Runs `f` forward and backward, then compares each analytic input gradient
/// against central differences. Inputs are treated as requiring grad.
GradCheckReport CheckGradients(const ScalarFn& f,
                               const std::vector<Tensor>& inputs,
                               const GradCheckOptions& options = {});

}  // namespace autograd
}  // namespace metalora

#endif  // METALORA_AUTOGRAD_GRADCHECK_H_
