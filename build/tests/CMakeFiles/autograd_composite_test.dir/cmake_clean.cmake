file(REMOVE_RECURSE
  "CMakeFiles/autograd_composite_test.dir/autograd_composite_test.cc.o"
  "CMakeFiles/autograd_composite_test.dir/autograd_composite_test.cc.o.d"
  "autograd_composite_test"
  "autograd_composite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_composite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
