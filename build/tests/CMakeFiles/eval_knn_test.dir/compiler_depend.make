# Empty compiler generated dependencies file for eval_knn_test.
# This may be replaced when dependencies are built.
