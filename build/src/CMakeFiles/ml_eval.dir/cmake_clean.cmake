file(REMOVE_RECURSE
  "CMakeFiles/ml_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/ml_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/ml_eval.dir/eval/knn.cc.o"
  "CMakeFiles/ml_eval.dir/eval/knn.cc.o.d"
  "CMakeFiles/ml_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/ml_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/ml_eval.dir/eval/trainer.cc.o"
  "CMakeFiles/ml_eval.dir/eval/trainer.cc.o.d"
  "CMakeFiles/ml_eval.dir/eval/ttest.cc.o"
  "CMakeFiles/ml_eval.dir/eval/ttest.cc.o.d"
  "libml_eval.a"
  "libml_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
