// Figure 4 reproduction: the MetaLoRA architecture.
//
// Fig. 4 shows the mapping net generating the seed c (CP) or core C (TR),
// integrated into weight matrices and convolutional tensors via the CP and
// TR formats. This bench measures what the figure implies:
//   (1) seed generation cost (mapping-net forward) per input;
//   (2) the factored per-sample application vs materializing a per-sample
//       ΔW — the implementation insight that makes MetaLoRA cheap;
//   (3) stored parameters of each format over a rank sweep.
#include <iostream>

#include "autograd/ops.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/mapping_net.h"
#include "core/metalora_linear.h"
#include "nn/linear.h"
#include "tensor/matmul.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"
#include "tn/tn_cost.h"

using namespace metalora;  // NOLINT

int main() {
  std::cout << "=== Fig. 4 reproduction: mapping net -> c/C -> CP & TR "
               "integration ===\n\n";
  const int64_t in = 64, out = 64, feat = 32, batch = 32;
  Rng rng(4);
  Tensor x = RandomNormal(Shape{batch, in}, rng);
  Tensor feats = RandomNormal(Shape{batch, feat}, rng);

  TablePrinter printer(StrFormat(
      "Linear %ldx%ld, batch %ld, feature dim %ld", in, out, batch, feat));
  printer.SetHeader({"format", "rank R", "adapter params", "seed gen us",
                     "factored fwd us", "per-sample dW us", "speedup"});

  for (int64_t rank : {2, 4, 8}) {
    for (int variant = 0; variant < 2; ++variant) {
      const bool is_tr = variant == 1;
      core::AdapterOptions opts;
      opts.kind = is_tr ? core::AdapterKind::kMetaLoraTr
                        : core::AdapterKind::kMetaLoraCp;
      opts.rank = rank;
      opts.alpha = static_cast<float>(rank);
      opts.feature_dim = feat;
      opts.mapping_hidden = 16;
      opts.seed = 40 + static_cast<uint64_t>(rank);

      Rng brng(7);
      auto make_base = [&] {
        return std::make_unique<nn::Linear>(in, out, true, brng);
      };

      autograd::NoGradGuard guard;
      double gen_us = 0, factored_us = 0, materialized_us = 0;
      int64_t params = 0;
      const int reps = 20;

      if (!is_tr) {
        core::MetaLoraCpLinear meta(make_base(), opts);
        Rng frng(11);
        for (auto& np : meta.NamedParameters()) {
          if (np.name == "lora_b")
            FillNormal(np.variable->mutable_value(), frng, 0, 0.5f);
        }
        params = meta.AdapterParamCount();
        nn::Variable fv(feats, false);
        Timer tg;
        Tensor seeds;
        for (int i = 0; i < reps; ++i)
          seeds = meta.mapping_net()->Forward(fv).value();
        gen_us = tg.Micros() / reps;

        meta.SetFeatures(fv);
        Timer tf;
        for (int i = 0; i < reps; ++i)
          meta.Forward(nn::Variable(x, false));
        factored_us = tf.Micros() / reps;

        // Faithful-but-slow path: materialize ΔW per sample and apply.
        Timer tm;
        for (int i = 0; i < reps; ++i) {
          for (int64_t s = 0; s < batch; ++s) {
            Tensor c{Shape{rank}};
            for (int64_t r = 0; r < rank; ++r)
              c.flat(r) = seeds.flat(s * rank + r);
            Tensor dw = meta.DeltaWeightFor(c);
            Tensor xs{Shape{1, in}};
            std::copy(x.data() + s * in, x.data() + (s + 1) * in, xs.data());
            Tensor ys = MatmulTransB(xs, dw);
            (void)ys;
          }
        }
        materialized_us = tm.Micros() / reps;
      } else {
        core::MetaLoraTrLinear meta(make_base(), opts);
        Rng frng(11);
        for (auto& np : meta.NamedParameters()) {
          if (np.name == "core_b")
            FillNormal(np.variable->mutable_value(), frng, 0, 0.5f);
        }
        params = meta.AdapterParamCount();
        nn::Variable fv(feats, false);
        Timer tg;
        Tensor seeds;
        for (int i = 0; i < reps; ++i)
          seeds = meta.mapping_net()->Forward(fv).value();
        gen_us = tg.Micros() / reps;

        meta.SetFeatures(fv);
        Timer tf;
        for (int i = 0; i < reps; ++i)
          meta.Forward(nn::Variable(x, false));
        factored_us = tf.Micros() / reps;

        Timer tm;
        for (int i = 0; i < reps; ++i) {
          for (int64_t s = 0; s < batch; ++s) {
            Tensor core{Shape{rank, rank}};
            for (int64_t r = 0; r < rank * rank; ++r)
              core.flat(r) = seeds.flat(s * rank * rank + r);
            Tensor dw = meta.DeltaWeightFor(core);
            Tensor xs{Shape{1, in}};
            std::copy(x.data() + s * in, x.data() + (s + 1) * in, xs.data());
            Tensor ys = MatmulTransB(xs, dw);
            (void)ys;
          }
        }
        materialized_us = tm.Micros() / reps;
      }

      printer.AddRow({is_tr ? "MetaLoRA TR (Eq. 7)" : "MetaLoRA CP (Eq. 6)",
                      std::to_string(rank), FormatWithCommas(params),
                      FormatDouble(gen_us, 1), FormatDouble(factored_us, 1),
                      FormatDouble(materialized_us, 1),
                      FormatDouble(materialized_us /
                                       std::max(factored_us, 1e-9), 1) +
                          "x"});
    }
  }
  printer.Print(std::cout);

  std::cout << "\nstored-parameter scaling (dense " << in << "x" << out << " = "
            << FormatWithCommas(tn::DenseLinearParams(in, out)) << "):\n";
  TablePrinter pt("");
  pt.SetHeader({"rank R", "CP factors", "TR cores", "TR/CP ratio"});
  for (int64_t rank : {1, 2, 4, 8, 16}) {
    const int64_t cp = tn::MetaLoraCpLinearParams(in, out, rank);
    const int64_t tr = tn::MetaLoraTrLinearParams(in, out, rank);
    pt.AddRow({std::to_string(rank), FormatWithCommas(cp),
               FormatWithCommas(tr),
               FormatDouble(static_cast<double>(tr) / cp, 2) + "x"});
  }
  pt.Print(std::cout);
  std::cout << "\n(the factored path applies the generated update without\n"
               " ever materializing a per-sample weight matrix; Eq. 6\n"
               " factorizes as (xA)diag(c)B, Eq. 7 as batched bond\n"
               " contractions — see DESIGN.md)\n";
  return 0;
}
