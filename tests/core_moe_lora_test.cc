#include "core/moe_lora.h"

#include <gtest/gtest.h>

#include "autograd/graph.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "core/inject.h"
#include "nn/resnet.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace core {
namespace {

constexpr int64_t kFeatDim = 12;

AdapterOptions Opts(int experts = 3, int64_t rank = 2) {
  AdapterOptions o;
  o.kind = AdapterKind::kMoeLora;
  o.rank = rank;
  o.alpha = static_cast<float>(rank);
  o.num_tasks = experts;
  o.feature_dim = kFeatDim;
  o.seed = 5;
  return o;
}

std::unique_ptr<nn::Linear> BaseLinear() {
  Rng rng(1);
  return std::make_unique<nn::Linear>(6, 4, true, rng);
}

std::unique_ptr<nn::Conv2d> BaseConv() {
  Rng rng(1);
  return std::make_unique<nn::Conv2d>(2, 4, 3, 1, 1, false, rng);
}

TEST(MoeLoraLinearTest, StartsAtPretrainedPoint) {
  MoeLoraLinear moe(BaseLinear(), Opts());
  Rng rng(2);
  Tensor x = RandomNormal(Shape{3, 6}, rng);
  Tensor feats = RandomNormal(Shape{3, kFeatDim}, rng);
  autograd::NoGradGuard g;
  moe.SetFeatures(Variable(feats, false));
  Tensor out = moe.Forward(Variable(x, false)).value();
  Tensor base_out = moe.Child("base")->Forward(Variable(x, false)).value();
  EXPECT_TRUE(AllClose(out, base_out, 1e-6f, 1e-6f));
}

TEST(MoeLoraLinearTest, GateWeightsAreADistribution) {
  MoeLoraLinear moe(BaseLinear(), Opts(4));
  Rng rng(3);
  Tensor feats = RandomNormal(Shape{5, kFeatDim}, rng);
  autograd::NoGradGuard g;
  moe.SetFeatures(Variable(feats, false));
  Tensor w = moe.GateWeights().value();
  EXPECT_EQ(w.shape(), Shape({5, 4}));
  for (int64_t i = 0; i < 5; ++i) {
    double sum = 0;
    for (int64_t e = 0; e < 4; ++e) {
      EXPECT_GE(w.flat(i * 4 + e), 0.0f);
      sum += w.flat(i * 4 + e);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(MoeLoraLinearTest, GateDependsOnInputFeatures) {
  MoeLoraLinear moe(BaseLinear(), Opts());
  Rng rng(4);
  autograd::NoGradGuard g;
  moe.SetFeatures(Variable(RandomNormal(Shape{1, kFeatDim}, rng, 0, 3), false));
  Tensor w1 = moe.GateWeights().value();
  moe.SetFeatures(Variable(RandomNormal(Shape{1, kFeatDim}, rng, 0, 3), false));
  Tensor w2 = moe.GateWeights().value();
  EXPECT_FALSE(AllClose(w1, w2, 1e-4f, 1e-4f));
}

TEST(MoeLoraLinearTest, ForwardWithoutFeaturesDies) {
  MoeLoraLinear moe(BaseLinear(), Opts());
  Variable x(Tensor::Ones(Shape{2, 6}), false);
  EXPECT_DEATH(moe.Forward(x), "SetFeatures");
}

TEST(MoeLoraLinearTest, GradientsReachGateAndExperts) {
  MoeLoraLinear moe(BaseLinear(), Opts());
  // Activate expert paths so the gate matters.
  Rng rng(5);
  for (auto& np : moe.NamedParameters()) {
    if (np.name.rfind("lora_b", 0) == 0) {
      FillNormal(np.variable->mutable_value(), rng, 0.0f, 0.5f);
    }
  }
  Variable x(RandomNormal(Shape{3, 6}, rng), false);
  Variable feats(RandomNormal(Shape{3, kFeatDim}, rng), false);
  moe.SetFeatures(feats);
  Variable y = moe.Forward(x);
  ASSERT_TRUE(autograd::Backward(autograd::SumAll(autograd::Mul(y, y))).ok());
  bool gate_grad = false, expert_grad = false;
  for (auto& np : moe.NamedParameters()) {
    if (np.name.rfind("gate/", 0) == 0 && np.variable->grad().defined())
      gate_grad = true;
    if (np.name == "lora_a0" && np.variable->grad().defined())
      expert_grad = true;
    if (np.name.rfind("base/", 0) == 0) {
      EXPECT_FALSE(np.variable->grad().defined()) << np.name;
    }
  }
  EXPECT_TRUE(gate_grad);
  EXPECT_TRUE(expert_grad);
}

TEST(MoeLoraLinearTest, ForwardIsGateWeightedSum) {
  // With hand-set one-hot-ish gate and known expert outputs, the adapter
  // delta must equal the weighted expert deltas.
  MoeLoraLinear moe(BaseLinear(), Opts(2, 1));
  Rng rng(6);
  for (auto& np : moe.NamedParameters()) {
    if (np.name.rfind("lora_b", 0) == 0)
      FillNormal(np.variable->mutable_value(), rng, 0.0f, 1.0f);
    // Saturate the gate toward expert 0: huge positive bias on logit 0.
    if (np.name == "gate/weight") np.variable->mutable_value().Fill(0.0f);
    if (np.name == "gate/bias") {
      np.variable->mutable_value().flat(0) = 50.0f;
      np.variable->mutable_value().flat(1) = -50.0f;
    }
  }
  Tensor x = RandomNormal(Shape{2, 6}, rng);
  Tensor feats = RandomNormal(Shape{2, kFeatDim}, rng);
  autograd::NoGradGuard g;
  moe.SetFeatures(Variable(feats, false));
  Tensor w = moe.GateWeights().value();
  EXPECT_NEAR(w.flat(0), 1.0f, 1e-5);  // expert 0 selected

  Tensor out = moe.Forward(Variable(x, false)).value();
  // Rebuild expert 0's delta by hand: scaling * (x·A0ᵀ)·B0ᵀ.
  Tensor a0, b0;
  for (auto& np : moe.NamedParameters()) {
    if (np.name == "lora_a0") a0 = np.variable->value();
    if (np.name == "lora_b0") b0 = np.variable->value();
  }
  Tensor base_out = moe.Child("base")->Forward(Variable(x, false)).value();
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t o = 0; o < 4; ++o) {
      double expected = base_out.flat(i * 4 + o);
      for (int64_t r = 0; r < 1; ++r) {
        double h = 0;
        for (int64_t j = 0; j < 6; ++j)
          h += static_cast<double>(x.flat(i * 6 + j)) * a0.flat(r * 6 + j);
        expected += h * b0.flat(o * 1 + r);  // scaling = alpha/rank = 1
      }
      EXPECT_NEAR(out.flat(i * 4 + o), expected, 2e-4);
    }
  }
}

TEST(MoeLoraConvTest, StartsAtPretrainedPoint) {
  MoeLoraConv moe(BaseConv(), Opts());
  Rng rng(7);
  Tensor x = RandomNormal(Shape{2, 2, 5, 5}, rng);
  Tensor feats = RandomNormal(Shape{2, kFeatDim}, rng);
  autograd::NoGradGuard g;
  moe.SetFeatures(Variable(feats, false));
  Tensor out = moe.Forward(Variable(x, false)).value();
  Tensor base_out = moe.Child("base")->Forward(Variable(x, false)).value();
  EXPECT_TRUE(AllClose(out, base_out, 1e-6f, 1e-6f));
}

TEST(MoeLoraTest, InjectionIntoResNet) {
  nn::ResNetConfig c;
  c.base_width = 4;
  c.num_classes = 3;
  c.seed = 2;
  nn::ResNet net(c);
  net.SetTraining(false);
  AdapterOptions opts = Opts();
  opts.feature_dim = 16;
  auto r = InjectAdapters(&net, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_wrapped_convs, 7);
  Rng rng(8);
  Tensor x = RandomNormal(Shape{2, 3, 16, 16}, rng);
  r->BindFeatures(nn::Variable(RandomNormal(Shape{2, 16}, rng), false));
  autograd::NoGradGuard g;
  EXPECT_EQ(net.Forward(nn::Variable(x, false)).shape(), Shape({2, 3}));
}

TEST(MoeLoraTest, RequiresFeatureDim) {
  AdapterOptions o = Opts();
  o.feature_dim = 0;
  EXPECT_DEATH(MoeLoraLinear(BaseLinear(), o), "feature_dim");
}

}  // namespace
}  // namespace core
}  // namespace metalora
