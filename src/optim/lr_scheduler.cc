#include "optim/lr_scheduler.h"

#include <cmath>

#include "common/check.h"

namespace metalora {
namespace optim {

CosineLr::CosineLr(Optimizer* optimizer, double base_lr, double min_lr,
                   int64_t total_steps, int64_t warmup_steps)
    : LrScheduler(optimizer),
      base_lr_(base_lr),
      min_lr_(min_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps) {
  ML_CHECK_GT(total_steps, 0);
  ML_CHECK_GE(warmup_steps, 0);
}

double CosineLr::ComputeLr(int64_t step) {
  if (warmup_steps_ > 0 && step <= warmup_steps_) {
    return base_lr_ * static_cast<double>(step) /
           static_cast<double>(warmup_steps_);
  }
  const double progress =
      std::min(1.0, static_cast<double>(step - warmup_steps_) /
                        std::max<double>(1.0, static_cast<double>(
                                                  total_steps_ - warmup_steps_)));
  return min_lr_ + 0.5 * (base_lr_ - min_lr_) * (1.0 + std::cos(M_PI * progress));
}

StepLr::StepLr(Optimizer* optimizer, double base_lr, int64_t period,
               double gamma)
    : LrScheduler(optimizer), base_lr_(base_lr), period_(period), gamma_(gamma) {
  ML_CHECK_GT(period, 0);
}

double StepLr::ComputeLr(int64_t step) {
  const int64_t drops = step / period_;
  return base_lr_ * std::pow(gamma_, static_cast<double>(drops));
}

}  // namespace optim
}  // namespace metalora
