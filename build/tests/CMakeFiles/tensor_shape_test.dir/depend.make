# Empty dependencies file for tensor_shape_test.
# This may be replaced when dependencies are built.
