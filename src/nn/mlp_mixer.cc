#include "nn/mlp_mixer.h"

#include "autograd/ops.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/norm.h"

namespace metalora {
namespace nn {

namespace {

// Applies a named Linear child to the trailing dim of a [N, S, D_in] tensor.
Variable ApplyLinear3D(Module* parent, const std::string& name,
                       const Variable& x) {
  const int64_t n = x.dim(0), s = x.dim(1), d = x.dim(2);
  Variable flat = autograd::Reshape(x, Shape{n * s, d});
  Variable out = parent->Child(name)->Forward(flat);
  return autograd::Reshape(out, Shape{n, s, out.dim(1)});
}

}  // namespace

MixerBlock::MixerBlock(int64_t num_tokens, int64_t hidden_dim,
                       int64_t token_mlp_dim, int64_t channel_mlp_dim,
                       Rng& rng)
    : Module("MixerBlock"), num_tokens_(num_tokens), hidden_dim_(hidden_dim) {
  RegisterModule("ln_token", std::make_unique<LayerNorm>(hidden_dim));
  RegisterModule("token_fc1", std::make_unique<Linear>(num_tokens,
                                                       token_mlp_dim,
                                                       /*bias=*/true, rng));
  RegisterModule("token_fc2", std::make_unique<Linear>(token_mlp_dim,
                                                       num_tokens,
                                                       /*bias=*/true, rng));
  RegisterModule("ln_channel", std::make_unique<LayerNorm>(hidden_dim));
  RegisterModule("channel_fc1", std::make_unique<Linear>(hidden_dim,
                                                         channel_mlp_dim,
                                                         /*bias=*/true, rng));
  RegisterModule("channel_fc2", std::make_unique<Linear>(channel_mlp_dim,
                                                         hidden_dim,
                                                         /*bias=*/true, rng));
}

Variable MixerBlock::Forward(const Variable& x) {
  const int64_t s = x.dim(1), d = x.dim(2);
  ML_CHECK_EQ(s, num_tokens_);
  ML_CHECK_EQ(d, hidden_dim_);

  // Token mixing: normalize, transpose to [N, D, S], MLP over S, back.
  Variable h = Child("ln_token")->Forward(x);
  h = autograd::Permute(h, {0, 2, 1});  // [N, D, S]
  h = ApplyLinear3D(this, "token_fc1", h);
  h = autograd::Gelu(h);
  h = ApplyLinear3D(this, "token_fc2", h);
  h = autograd::Permute(h, {0, 2, 1});  // [N, S, D]
  Variable x1 = autograd::Add(x, h);

  // Channel mixing: MLP over D.
  Variable c = Child("ln_channel")->Forward(x1);
  c = ApplyLinear3D(this, "channel_fc1", c);
  c = autograd::Gelu(c);
  c = ApplyLinear3D(this, "channel_fc2", c);
  return autograd::Add(x1, c);
}

MlpMixer::MlpMixer(const MlpMixerConfig& config)
    : Module("MlpMixer"), config_(config) {
  ML_CHECK_EQ(config.image_size % config.patch_size, 0)
      << "patch size must divide image size";
  const int64_t grid = config.image_size / config.patch_size;
  num_tokens_ = grid * grid;
  Rng rng(config.seed);

  RegisterModule("patch_embed",
                 std::make_unique<Conv2d>(config.in_channels,
                                          config.hidden_dim,
                                          config.patch_size,
                                          config.patch_size, 0,
                                          /*bias=*/true, rng));
  for (int b = 0; b < config.num_blocks; ++b) {
    RegisterModule("block" + std::to_string(b),
                   std::make_unique<MixerBlock>(num_tokens_,
                                                config.hidden_dim,
                                                config.token_mlp_dim,
                                                config.channel_mlp_dim, rng));
  }
  RegisterModule("ln_head", std::make_unique<LayerNorm>(config.hidden_dim));
  RegisterModule("fc", std::make_unique<Linear>(config.hidden_dim,
                                                config.num_classes,
                                                /*bias=*/true, rng));
}

Variable MlpMixer::ForwardFeatures(const Variable& x) {
  // Patchify: [N, C, H, W] -> conv -> [N, D, G, G] -> [N, S, D].
  Variable h = Child("patch_embed")->Forward(x);
  const int64_t n = h.dim(0), d = h.dim(1);
  h = autograd::Reshape(h, Shape{n, d, num_tokens_});
  h = autograd::Permute(h, {0, 2, 1});  // [N, S, D]

  for (int b = 0; b < config_.num_blocks; ++b) {
    h = Child("block" + std::to_string(b))->Forward(h);
  }
  h = Child("ln_head")->Forward(h);
  // Mean over tokens: [N, S, D] -> [N, D]. Sum via permute-free reduction:
  // reshape to use MeanAxis on axis 1.
  {
    // MeanAxis is a tensor-level op; express the reduction with autograd ops:
    // mean over S equals (1/S) * ones-weighted sum, which is a matmul with a
    // constant vector. Simpler: permute to [N, D, S] and GlobalAvgPool-like
    // trick via reshape to [N, D, S, 1].
    h = autograd::Permute(h, {0, 2, 1});                       // [N, D, S]
    h = autograd::Reshape(h, Shape{n, config_.hidden_dim,
                                   num_tokens_, 1});           // [N, D, S, 1]
    h = autograd::GlobalAvgPool(h);                            // [N, D]
  }
  return h;
}

Variable MlpMixer::Forward(const Variable& x) {
  return Child("fc")->Forward(ForwardFeatures(x));
}

}  // namespace nn
}  // namespace metalora
