// Synthetic personalized-recommendation data (paper §III.E: "particularly
// suitable for personalized applications, such as recommendation systems").
//
// Each user shares a population-level preference direction but adds a
// private component; an item's label ("liked"/"disliked") depends on both.
// A global model can only capture the shared part — per-user adaptation is
// required for the private part, and the per-user embedding (a noisy
// estimate of the private component, as if inferred from interaction
// history) is exactly the conditioning signal MetaLoRA's mapping net
// consumes.
#ifndef METALORA_DATA_SYNTHETIC_RECSYS_H_
#define METALORA_DATA_SYNTHETIC_RECSYS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace metalora {
namespace data {

struct RecsysSpec {
  int64_t num_users = 8;
  int64_t item_dim = 16;       // item feature dimensionality
  int64_t embedding_dim = 8;   // user embedding (conditioning) size
  /// Weight of the user-private component relative to the shared one;
  /// higher = more personalization needed.
  float private_strength = 1.0f;
  /// Noise on the observed user embedding (history-estimation error).
  float embedding_noise = 0.1f;
};

struct RecsysDataset {
  Tensor items;                    // [N, item_dim]
  std::vector<int64_t> labels;     // 0 = dislike, 1 = like
  std::vector<int64_t> user_ids;   // [N]
  Tensor user_embeddings;          // [num_users, embedding_dim]

  int64_t size() const { return items.defined() ? items.dim(0) : 0; }

  /// Embeddings gathered per sample: [N, embedding_dim].
  Tensor PerSampleEmbeddings() const;
};

/// The ground-truth preference model; kept so train/test splits share users.
class RecsysWorld {
 public:
  RecsysWorld(const RecsysSpec& spec, uint64_t seed);

  /// Samples `per_user` labeled items for every user.
  RecsysDataset Sample(int64_t per_user, uint64_t seed) const;

  const RecsysSpec& spec() const { return spec_; }

 private:
  RecsysSpec spec_;
  Tensor shared_w_;       // [item_dim]
  Tensor private_w_;      // [num_users, item_dim]
  Tensor embeddings_;     // [num_users, embedding_dim] (noisy projections)
};

}  // namespace data
}  // namespace metalora

#endif  // METALORA_DATA_SYNTHETIC_RECSYS_H_
