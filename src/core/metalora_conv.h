// MetaLoRA for convolutional layers (paper §III.D).
//
// CP variant: Conv-LoRA's two-stage path with the R intermediate channels
// rescaled per input by the generated seed c — exactly
// ΔW = Λ ×₁ A ×₁ B ×₃ c applied without materializing per-sample kernels.
//
// TR variant: the first ring core is a convolution to R·R bond channels; the
// generated core C[r2,r0] and the stored core B[r1,o,r2] combine into a
// per-sample 1×1 recovery convolution.
#ifndef METALORA_CORE_METALORA_CONV_H_
#define METALORA_CORE_METALORA_CONV_H_

#include <memory>

#include "core/adapter_config.h"
#include "core/conditioning_cache.h"
#include "core/mapping_net.h"
#include "nn/conv2d.h"

namespace metalora {
namespace core {

class MetaLoraCpConv : public Adapter {
 public:
  MetaLoraCpConv(std::unique_ptr<nn::Conv2d> base,
                 const AdapterOptions& options);

  Variable Forward(const Variable& x) override;
  int64_t AdapterParamCount() const override;

  /// Materializes ΔW [O, I, K, K] for one seed c [R] (analysis/tests only).
  Tensor DeltaWeightFor(const Tensor& seed_c) const;

  MappingNet* mapping_net() { return mapping_; }

  /// Seed cache consulted by no-grad forwards (see conditioning_cache.h).
  ConditioningCache* conditioning_cache() override { return &cache_; }

 private:
  nn::Conv2d* base_;
  MappingNet* mapping_;
  Variable lora_a_;  // [R, I, K, K]
  Variable lora_b_;  // [O, R]
  float scaling_;
  ConditioningCache cache_;
  uint64_t cache_salt_ = NextAdapterCacheSalt();
};

class MetaLoraTrConv : public Adapter {
 public:
  MetaLoraTrConv(std::unique_ptr<nn::Conv2d> base,
                 const AdapterOptions& options);

  Variable Forward(const Variable& x) override;
  int64_t AdapterParamCount() const override;

  MappingNet* mapping_net() { return mapping_; }

  /// Seed + recovery-weight cache consulted by no-grad forwards.
  ConditioningCache* conditioning_cache() override { return &cache_; }

 private:
  nn::Conv2d* base_;
  MappingNet* mapping_;
  Variable core_a_;  // conv weight [R*R, I, K, K]: channel q = r0*R + r1
  Variable core_b_;  // [R(r1), O, R(r2)]
  float scaling_;
  ConditioningCache cache_;
  uint64_t cache_salt_ = NextAdapterCacheSalt();
};

}  // namespace core
}  // namespace metalora

#endif  // METALORA_CORE_METALORA_CONV_H_
