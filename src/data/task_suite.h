// Multi-task suite: tasks are systematic domain shifts over the synthetic
// image distribution.
//
// This substitutes for the paper's multi-task visual benchmark. Each task is
// a photometric/geometric transform whose parameters are drawn once per task
// (deterministically from the suite seed). The transforms are chosen to
// *conflict*: e.g. one task inverts intensities while another does not, so
// no single static ΔW can serve every task — the failure mode of vanilla
// LoRA that motivates MetaLoRA (§I). Task identity is visible in the input
// statistics, which is what MetaLoRA's feature-conditioned parameter
// generation exploits.
#ifndef METALORA_DATA_TASK_SUITE_H_
#define METALORA_DATA_TASK_SUITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/synthetic_images.h"
#include "tensor/tensor.h"

namespace metalora {
namespace data {

/// A single task's domain-shift parameters.
struct TaskTransform {
  /// 3×3 channel mixing matrix (identity for the base task).
  float channel_mix[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  float brightness = 0.0f;  // added after mixing
  float contrast = 1.0f;    // scaling around 0.5
  float noise_std = 0.0f;   // extra Gaussian pixel noise
  bool invert = false;      // x -> 1 - x before everything else
  bool flip_h = false;      // mirror horizontally
  int rot90 = 0;            // quarter-turns (0..3); applied before flip

  std::string ToString() const;
};

/// Applies `t` to a [C, H, W] image (C must be 3 for channel mixing; other
/// channel counts skip the mix). `rng` drives the per-sample noise.
Tensor ApplyTransform(const Tensor& image, const TaskTransform& t, Rng& rng);

/// A deterministic set of tasks. Task 0 is always the identity (the
/// pre-training domain); tasks 1..T-1 are progressively stronger shifts.
class TaskSuite {
 public:
  TaskSuite(int num_tasks, uint64_t seed);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  const TaskTransform& task(int i) const;

 private:
  std::vector<TaskTransform> tasks_;
};

/// An in-memory multi-task dataset.
struct MultiTaskDataset {
  Tensor images;                  // [N, C, H, W]
  std::vector<int64_t> labels;    // class ids
  std::vector<int64_t> task_ids;  // task ids

  int64_t size() const { return images.defined() ? images.dim(0) : 0; }
};

/// Generates `per_task` samples for each task in `suite` (classes uniform).
MultiTaskDataset MakeMultiTaskDataset(const SyntheticImageGenerator& gen,
                                      const TaskSuite& suite, int64_t per_task,
                                      uint64_t seed);

/// Generates `count` samples of the base (identity) domain only — the
/// pre-training corpus for the frozen backbone.
MultiTaskDataset MakeBaseDataset(const SyntheticImageGenerator& gen,
                                 int64_t count, uint64_t seed);

/// Splits by index parity-free random permutation into train / test parts.
void SplitDataset(const MultiTaskDataset& all, double test_fraction,
                  uint64_t seed, MultiTaskDataset* train,
                  MultiTaskDataset* test);

/// Selects the subset belonging to `task_id`.
MultiTaskDataset FilterTask(const MultiTaskDataset& all, int64_t task_id);

/// Selects every sample whose task is NOT `task_id` (for unseen-task
/// ablations).
MultiTaskDataset ExcludeTask(const MultiTaskDataset& all, int64_t task_id);

}  // namespace data
}  // namespace metalora

#endif  // METALORA_DATA_TASK_SUITE_H_
