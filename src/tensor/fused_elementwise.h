// Fused elementwise chains for compiled serving plans.
//
// A chain of elementwise facade ops (bias add, activation, scale, seed
// application) that the dynamic graph runs as separate full passes over
// memory is collapsed by the plan compiler into ONE pass: for each output
// element the stages run back-to-back on a register value, so a k-stage
// chain reads its primary input once and writes its output once instead
// of k times.
//
// Bit-identity contract: each stage applies the exact arithmetic
// expression of the dynamic op it replaces (same operand order, same
// constants). The interpreter keeps the stage sequence as *runtime data*
// (a switch over EwOp inside the element loop), deliberately not
// specialized per chain: the compiler cannot contract a multiply from one
// stage with an add from the next into an FMA, because the stage kinds
// are not visible at compile time. Within a single stage the expression
// tree is token-identical to the dynamic kernel's, so any contraction the
// compiler performs is performed identically in both translation units.
#ifndef METALORA_TENSOR_FUSED_ELEMENTWISE_H_
#define METALORA_TENSOR_FUSED_ELEMENTWISE_H_

#include <cstdint>

namespace metalora {

/// One elementwise stage kind. Binary stages read `operand`; broadcast
/// stages index it with `mod` (see EwStageExec).
enum class EwOp : uint8_t {
  kAddTensor,   // v + operand[i]
  kSubTensor,   // v - operand[i]
  kRsubTensor,  // operand[i] - v (Sub fused along its right input)
  kMulTensor,   // v * operand[i]
  kScale,       // v * scalar
  kAddScalar,   // v + scalar
  kRelu,        // v > 0 ? v : 0
  kGelu,        // tanh-approximation GELU (ops_basic expression)
  kMulBroadcastMod,  // v * operand[i % mod]  (MulRowBroadcast: mod = cols)
  kMulBroadcastDiv,  // v * operand[i / mod]  (ScaleRows: mod = row width;
                     //  ScaleChannels: mod = spatial plane size)
};

/// One executable stage: everything resolved to raw pointers/immediates at
/// plan-binding time so execution allocates nothing.
struct EwStageExec {
  EwOp op = EwOp::kAddTensor;
  const float* operand = nullptr;
  float scalar = 0.0f;
  int64_t mod = 0;
};

/// out[i] = stages(in[i]) for i in [0, n). `out` may alias `in` (every
/// stage is element-local). `num_stages` >= 1.
void RunFusedElementwise(const float* in, float* out, int64_t n,
                         const EwStageExec* stages, int num_stages);

}  // namespace metalora

#endif  // METALORA_TENSOR_FUSED_ELEMENTWISE_H_
