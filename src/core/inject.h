// Adapter injection: walks a model tree and wraps Conv2d / Linear leaves in
// the adapter matching an AdapterKind, freezing everything else.
//
// After injection:
//   - every original parameter has requires_grad == false;
//   - adapter parameters (and mapping nets) are the only trainable state;
//   - the injected adapters are returned so the training loop can bind
//     conditioning features (MetaLoRA) or task ids (Multi-LoRA) per batch.
#ifndef METALORA_CORE_INJECT_H_
#define METALORA_CORE_INJECT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/adapter_config.h"
#include "nn/module.h"

namespace metalora {
namespace core {

struct InjectionFilter {
  bool adapt_convs = true;
  bool adapt_linears = true;
  /// Child names never wrapped (e.g. the classifier head "fc", projection
  /// shortcuts "proj"). Matching is on the immediate child name.
  std::vector<std::string> skip_names = {"fc", "proj", "patch_embed"};
};

struct InjectionResult {
  std::vector<Adapter*> adapters;  // non-owning; owned by the model tree
  int num_wrapped_convs = 0;
  int num_wrapped_linears = 0;
  /// LoTR kinds: number of distinct geometry groups created. The first
  /// adapter of each group (deterministic: model traversal order) owns the
  /// registered shared down/up factors; later members alias its storage.
  /// Zero for every non-LoTR kind.
  int num_shared_groups = 0;
  /// Trainable parameters added by all adapters. Shared LoTR factors are
  /// counted once (on the owning adapter), so this is the true trainable
  /// count, matching Module::TrainableParamCount over the tree.
  int64_t adapter_param_count = 0;

  /// Binds MetaLoRA conditioning features on every adapter. The binding
  /// lands on the calling thread's replica slot (see Adapter), so each
  /// data-parallel lane binds its own shard.
  void BindFeatures(const nn::Variable& features) const;
  /// Binds Multi-LoRA task ids on every adapter (calling replica's slot).
  void BindTaskIds(const std::vector<int64_t>& task_ids) const;
  /// Sizes every adapter's binding slots for `n` replicas. Call from the
  /// coordinator thread before forking lanes; see Adapter::EnsureReplicaSlots.
  void PrepareReplicas(int n) const;
};

/// Freezes `root` entirely, then wraps matching leaves according to
/// `options.kind`. kNone only freezes. Returns the injected adapters.
/// Fails if options are inconsistent (e.g. MetaLoRA without feature_dim).
Result<InjectionResult> InjectAdapters(nn::Module* root,
                                       const AdapterOptions& options,
                                       const InjectionFilter& filter = {});

}  // namespace core
}  // namespace metalora

#endif  // METALORA_CORE_INJECT_H_
