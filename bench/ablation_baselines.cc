// Ablation D: baseline spectrum — static vs selected vs generated updates.
//
// Compares, under the identical protocol, the full spectrum between a static
// LoRA and MetaLoRA:
//   LoRA                    one static update
//   Multi-LoRA (sum)        several static updates, learned static mixing
//   Multi-LoRA (oracle)     per-sample routing with ground-truth task ids
//                           (an upper bound using metadata others don't get)
//   MoE-LoRA                input-conditioned *selection* of static experts
//   Meta-LoRA CP / TR       input-conditioned *generation* of the update
//
// This isolates what Table I cannot: how much of MetaLoRA's gain comes from
// input conditioning per se vs from generating (not just selecting) the
// update.
#include <iostream>

#include "common/cli.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/experiment.h"

using namespace metalora;  // NOLINT

int main(int argc, char** argv) {
  CommandLine cli;
  cli.AddBool("quick", false, "CI-scale run");
  cli.AddInt("seeds", 2, "seeds to average");
  cli.AddInt("seed", 42, "root seed");
  if (auto st = cli.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << cli.Usage(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.Usage(argv[0]);
    return 0;
  }

  eval::ExperimentConfig base;
  base.backbone = eval::BackboneKind::kResNet;
  base.num_seeds = 1;
  const int num_seeds =
      cli.GetBool("quick") ? 1 : static_cast<int>(cli.GetInt("seeds"));
  if (cli.GetBool("quick")) {
    base.per_task_train = 32;
    base.per_task_test = 16;
    base.pretrain_samples = 128;
    base.pretrain.epochs = 2;
    base.adapt.epochs = 2;
  }

  struct Entry {
    std::string label;
    core::AdapterKind kind;
    bool oracle = false;
  };
  const std::vector<Entry> entries = {
      {"LoRA (static)", core::AdapterKind::kLora},
      {"Multi-LoRA (sum)", core::AdapterKind::kMultiLora, false},
      {"Multi-LoRA (oracle routing)", core::AdapterKind::kMultiLora, true},
      {"MoE-LoRA (selects experts)", core::AdapterKind::kMoeLora},
      {"Meta-LoRA CP (generates)", core::AdapterKind::kMetaLoraCp},
      {"Meta-LoRA TR (generates)", core::AdapterKind::kMetaLoraTr},
      {"LoTR (shares factors)", core::AdapterKind::kLotr},
      {"Meta-LoTR (shares + generates)", core::AdapterKind::kMetaLotr},
      {"TT-LoRA (tensor-train)", core::AdapterKind::kTt},
      {"Meta-TT (generates bond seed)", core::AdapterKind::kMetaTt},
  };

  std::cout << "=== Ablation D: static vs selected vs generated updates "
               "(ResNet) ===\n\n";
  TablePrinter printer("mean KNN accuracy over " + std::to_string(num_seeds) +
                       " seed(s)");
  printer.SetHeader({"Method", "K=5", "K=10", "trainable params"});
  for (const Entry& e : entries) {
    double k5 = 0, k10 = 0;
    int64_t params = 0;
    for (int s = 0; s < num_seeds; ++s) {
      eval::ExperimentConfig c = base;
      c.multi_lora_oracle = e.oracle;
      c.seed = cli.GetInt("seed") + 7919ull * static_cast<uint64_t>(s);
      auto r = eval::RunSingleAdaptation(c, e.kind, c.seed);
      if (!r.ok()) {
        std::cerr << "run failed: " << r.status().ToString() << "\n";
        return 1;
      }
      k5 += r->knn.at(5);
      k10 += r->knn.at(10);
      params = r->trainable_params;
    }
    printer.AddRow({e.label, FormatDouble(100.0 * k5 / num_seeds, 2) + "%",
                    FormatDouble(100.0 * k10 / num_seeds, 2) + "%",
                    FormatWithCommas(params)});
  }
  printer.Print(std::cout);
  std::cout << "\n(oracle routing uses ground-truth task ids at adaptation "
               "AND evaluation time;\n all other methods must infer "
               "task structure from the input)\n";
  return 0;
}
