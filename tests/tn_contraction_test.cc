#include "tn/contraction.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/matmul.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace tn {
namespace {

TEST(ContractionTest, MatmulIsAContraction) {
  Rng rng(1);
  Tensor a = RandomNormal(Shape{4, 6}, rng);
  Tensor b = RandomNormal(Shape{6, 5}, rng);
  auto c = Contract(a, b, {1}, {0});
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(AllClose(c.value(), Matmul(a, b), 1e-4f, 1e-4f));
}

TEST(ContractionTest, InnerProduct) {
  Tensor a = Tensor::FromVector(Shape{3}, {1, 2, 3});
  Tensor b = Tensor::FromVector(Shape{3}, {4, 5, 6});
  auto c = Contract(a, b, {0}, {0});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->rank(), 0);
  EXPECT_EQ(c->flat(0), 32.0f);
}

TEST(ContractionTest, OuterProduct) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2});
  Tensor b = Tensor::FromVector(Shape{3}, {3, 4, 5});
  auto c = Contract(a, b, {}, {});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->shape(), Shape({2, 3}));
  EXPECT_EQ(c->ToVector(), (std::vector<float>{3, 4, 5, 6, 8, 10}));
}

TEST(ContractionTest, PaperNotationContractAxis) {
  // X ×₁¹ A in the paper's (1-based) notation is ContractAxis(..., 0, 0).
  Rng rng(2);
  Tensor x = RandomNormal(Shape{3, 4}, rng);
  Tensor a = RandomNormal(Shape{3, 2}, rng);
  auto c = ContractAxis(x, a, 0, 0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->shape(), Shape({4, 2}));
  EXPECT_TRUE(AllClose(c.value(), Matmul(Transpose2D(x), a), 1e-4f, 1e-4f));
}

struct ContractCase {
  std::vector<int64_t> a_dims;
  std::vector<int64_t> b_dims;
  std::vector<int> a_axes;
  std::vector<int> b_axes;
};

class ContractRandomTest : public ::testing::TestWithParam<ContractCase> {};

TEST_P(ContractRandomTest, FastMatchesNaive) {
  const auto& p = GetParam();
  Rng rng(static_cast<uint64_t>(p.a_dims.size() * 37 + p.b_dims.size()));
  Tensor a = RandomNormal(Shape(p.a_dims), rng);
  Tensor b = RandomNormal(Shape(p.b_dims), rng);
  auto fast = Contract(a, b, p.a_axes, p.b_axes);
  auto slow = ContractNaive(a, b, p.a_axes, p.b_axes);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_TRUE(AllClose(fast.value(), slow.value(), 1e-4f, 1e-4f))
      << "max diff " << MaxAbsDiff(fast.value(), slow.value());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ContractRandomTest,
    ::testing::Values(
        ContractCase{{3, 4}, {4, 5}, {1}, {0}},
        ContractCase{{2, 3, 4}, {4, 3}, {2, 1}, {0, 1}},
        ContractCase{{2, 3, 4}, {3, 5, 2}, {1, 0}, {0, 2}},
        ContractCase{{5}, {5}, {0}, {0}},
        ContractCase{{2, 2}, {3}, {}, {}},
        ContractCase{{4, 3, 2, 2}, {2, 2, 3}, {2, 3, 1}, {0, 1, 2}},
        ContractCase{{6, 2}, {2, 6}, {0, 1}, {1, 0}}));

TEST(ContractionTest, OrderOfResultAxes) {
  // Free axes of A come first (in A's order), then B's.
  Rng rng(3);
  Tensor a = RandomNormal(Shape{2, 5, 3}, rng);
  Tensor b = RandomNormal(Shape{5, 7}, rng);
  auto c = Contract(a, b, {1}, {0});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->shape(), Shape({2, 3, 7}));
}

TEST(ContractionTest, ErrorsAreStatusNotCrashes) {
  Tensor a = Tensor::Ones(Shape{2, 3});
  Tensor b = Tensor::Ones(Shape{4, 5});
  // Mismatched extents.
  EXPECT_EQ(Contract(a, b, {1}, {0}).status().code(),
            StatusCode::kInvalidArgument);
  // Axis out of range.
  EXPECT_EQ(Contract(a, b, {7}, {0}).status().code(),
            StatusCode::kInvalidArgument);
  // Duplicate axis.
  EXPECT_EQ(Contract(a, b, {0, 0}, {0, 1}).status().code(),
            StatusCode::kInvalidArgument);
  // Length mismatch between axis lists.
  EXPECT_EQ(Contract(a, b, {0}, {0, 1}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ContractionTest, FlopsFormula) {
  // [a, s] x [s, b] over s: a*b*s multiply-adds.
  EXPECT_EQ(ContractionFlops(Shape{3, 4}, Shape{4, 5}, {1}), 3 * 5 * 4);
  // Outer product: every pair.
  EXPECT_EQ(ContractionFlops(Shape{3}, Shape{5}, {}), 15);
}

TEST(ContractionTest, AssociativityOfChainedContractions) {
  // (A·B)·C == A·(B·C) expressed via Contract.
  Rng rng(4);
  Tensor a = RandomNormal(Shape{3, 4}, rng);
  Tensor b = RandomNormal(Shape{4, 5}, rng);
  Tensor c = RandomNormal(Shape{5, 2}, rng);
  auto ab = Contract(a, b, {1}, {0});
  auto left = Contract(ab.value(), c, {1}, {0});
  auto bc = Contract(b, c, {1}, {0});
  auto right = Contract(a, bc.value(), {1}, {0});
  ASSERT_TRUE(left.ok() && right.ok());
  EXPECT_TRUE(AllClose(left.value(), right.value(), 1e-3f, 1e-3f));
}

}  // namespace
}  // namespace tn
}  // namespace metalora
