# Empty compiler generated dependencies file for eval_trainer_test.
# This may be replaced when dependencies are built.
