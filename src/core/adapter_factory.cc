#include "core/adapter_factory.h"

#include <utility>

#include "common/rng.h"
#include "core/conv_lora.h"
#include "core/lora_linear.h"
#include "core/metalora_conv.h"
#include "core/metalora_linear.h"
#include "core/moe_lora.h"
#include "core/multi_lora.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace metalora {
namespace core {

namespace {

bool NeedsFeatures(AdapterKind kind) {
  return kind == AdapterKind::kMetaLoraCp || kind == AdapterKind::kMetaLoraTr ||
         kind == AdapterKind::kMoeLora;
}

Result<std::unique_ptr<Adapter>> BuildLinearAdapter(const AdapterSpec& spec) {
  const BaseLayerSpec& b = spec.base;
  if (b.in_features <= 0 || b.out_features <= 0) {
    return Status::InvalidArgument("linear base needs positive in/out features");
  }
  Rng rng(b.init_seed);
  auto base = std::make_unique<nn::Linear>(b.in_features, b.out_features,
                                           b.bias, rng);
  switch (spec.options.kind) {
    case AdapterKind::kLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<LoraLinear>(std::move(base), spec.options));
    case AdapterKind::kMultiLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<MultiLoraLinear>(std::move(base), spec.options));
    case AdapterKind::kMoeLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<MoeLoraLinear>(std::move(base), spec.options));
    case AdapterKind::kMetaLoraCp:
      return std::unique_ptr<Adapter>(
          std::make_unique<MetaLoraCpLinear>(std::move(base), spec.options));
    case AdapterKind::kMetaLoraTr:
      return std::unique_ptr<Adapter>(
          std::make_unique<MetaLoraTrLinear>(std::move(base), spec.options));
    case AdapterKind::kNone:
      break;
  }
  return Status::InvalidArgument("no adapter to build for kind 'Original'");
}

Result<std::unique_ptr<Adapter>> BuildConvAdapter(const AdapterSpec& spec) {
  const BaseLayerSpec& b = spec.base;
  if (b.in_channels <= 0 || b.out_channels <= 0 || b.kernel <= 0) {
    return Status::InvalidArgument("conv base needs positive channels/kernel");
  }
  Rng rng(b.init_seed);
  auto base = std::make_unique<nn::Conv2d>(b.in_channels, b.out_channels,
                                           b.kernel, b.stride, b.padding,
                                           b.bias, rng);
  switch (spec.options.kind) {
    case AdapterKind::kLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<ConvLora>(std::move(base), spec.options));
    case AdapterKind::kMultiLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<MultiLoraConv>(std::move(base), spec.options));
    case AdapterKind::kMoeLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<MoeLoraConv>(std::move(base), spec.options));
    case AdapterKind::kMetaLoraCp:
      return std::unique_ptr<Adapter>(
          std::make_unique<MetaLoraCpConv>(std::move(base), spec.options));
    case AdapterKind::kMetaLoraTr:
      return std::unique_ptr<Adapter>(
          std::make_unique<MetaLoraTrConv>(std::move(base), spec.options));
    case AdapterKind::kNone:
      break;
  }
  return Status::InvalidArgument("no adapter to build for kind 'Original'");
}

}  // namespace

AdapterSpec LinearAdapterSpec(AdapterKind kind, int64_t in_features,
                              int64_t out_features, int64_t rank,
                              int64_t feature_dim, uint64_t seed) {
  AdapterSpec spec;
  spec.options.kind = kind;
  spec.options.rank = rank;
  spec.options.feature_dim = feature_dim;
  spec.options.seed = seed;
  spec.base.kind = BaseLayerKind::kLinear;
  spec.base.in_features = in_features;
  spec.base.out_features = out_features;
  spec.base.init_seed = seed ^ 0x9E3779B97F4A7C15ull;
  return spec;
}

AdapterSpec ConvAdapterSpec(AdapterKind kind, int64_t in_channels,
                            int64_t out_channels, int64_t kernel, int64_t rank,
                            int64_t feature_dim, uint64_t seed) {
  AdapterSpec spec;
  spec.options.kind = kind;
  spec.options.rank = rank;
  spec.options.feature_dim = feature_dim;
  spec.options.seed = seed;
  spec.base.kind = BaseLayerKind::kConv2d;
  spec.base.in_channels = in_channels;
  spec.base.out_channels = out_channels;
  spec.base.kernel = kernel;
  spec.base.init_seed = seed ^ 0x9E3779B97F4A7C15ull;
  return spec;
}

Result<std::unique_ptr<Adapter>> BuildAdapter(const AdapterSpec& spec) {
  if (NeedsFeatures(spec.options.kind) && spec.options.feature_dim <= 0) {
    return Status::InvalidArgument(
        "adapter kind " + AdapterKindName(spec.options.kind) +
        " needs a positive feature_dim");
  }
  switch (spec.base.kind) {
    case BaseLayerKind::kLinear:
      return BuildLinearAdapter(spec);
    case BaseLayerKind::kConv2d:
      return BuildConvAdapter(spec);
  }
  return Status::InvalidArgument("unknown base layer kind");
}

}  // namespace core
}  // namespace metalora
