// Quickstart: the MetaLoRA pipeline in ~60 lines of API calls.
//
//   1. synthesize a small multi-task image dataset;
//   2. pre-train a ResNet backbone on the base domain;
//   3. freeze it and inject MetaLoRA (TR) adapters;
//   4. adapt on the multi-task data (only adapters + mapping nets train);
//   5. score KNN accuracy of the adapted features.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "data/task_suite.h"
#include "eval/experiment.h"
#include "eval/knn.h"

using namespace metalora;  // NOLINT

int main() {
  // --- 1. Data: 4 classes, 3 conflicting domain-shift tasks. -------------
  data::ImageSpec spec{3, 16, 16};
  data::SyntheticImageGenerator generator(spec, /*num_classes=*/4);
  data::TaskSuite suite(/*num_tasks=*/3, /*seed=*/7);
  data::MultiTaskDataset pretrain_data =
      data::MakeBaseDataset(generator, /*count=*/256, /*seed=*/1);
  data::MultiTaskDataset train =
      data::MakeMultiTaskDataset(generator, suite, /*per_task=*/64, 2);
  data::MultiTaskDataset test =
      data::MakeMultiTaskDataset(generator, suite, /*per_task=*/32, 3);

  // --- 2. Pre-train the backbone on the base domain. ---------------------
  nn::ResNetConfig config;
  config.base_width = 8;
  config.num_classes = 4;
  config.seed = 11;
  eval::Backbone backbone = eval::MakeResNetBackbone(config);
  eval::TrainOptions pretrain_opts;
  pretrain_opts.epochs = 3;
  pretrain_opts.lr = 2e-3;
  auto pretrain_stats =
      eval::PretrainBackbone(backbone, pretrain_data, pretrain_opts);
  ML_CHECK_OK(pretrain_stats.status());
  std::cout << "pre-trained backbone: train acc "
            << pretrain_stats->final_train_accuracy << "\n";

  // --- 3. Freeze + inject MetaLoRA (TR). The extractor that conditions the
  //        mapping nets is a frozen copy of the pre-trained backbone. ------
  eval::Backbone extractor_net = eval::MakeResNetBackbone(config);
  ML_CHECK_OK(extractor_net.module->LoadStateDict(backbone.module->StateDict()));
  extractor_net.module->SetTraining(false);
  core::FeatureExtractor extractor(extractor_net.forward_features,
                                   extractor_net.feature_dim);

  core::AdapterOptions adapter_opts;
  adapter_opts.kind = core::AdapterKind::kMetaLoraTr;
  adapter_opts.rank = 2;
  adapter_opts.feature_dim = extractor.feature_dim();
  auto injection = core::InjectAdapters(backbone.module.get(), adapter_opts);
  ML_CHECK_OK(injection.status());
  std::cout << "injected " << injection->adapters.size()
            << " adapters; trainable params "
            << backbone.module->TrainableParamCount() << " / "
            << backbone.module->ParamCount() << "\n";

  // --- 4. Adapt: only adapters and mapping nets receive gradients. -------
  eval::AdaptContext ctx;
  ctx.injection = injection.value();
  ctx.extractor = &extractor;
  eval::TrainOptions adapt_opts;
  adapt_opts.epochs = 4;
  adapt_opts.lr = 4e-3;
  auto adapt_stats = eval::AdaptModel(backbone, train, adapt_opts, &ctx);
  ML_CHECK_OK(adapt_stats.status());
  std::cout << "adapted in " << adapt_stats->seconds << "s; final train acc "
            << adapt_stats->final_train_accuracy << "\n";

  // --- 5. Evaluate: KNN over adapted features (the paper's protocol). ----
  Tensor ref = eval::ExtractDatasetFeatures(backbone, train, 32, &ctx);
  Tensor query = eval::ExtractDatasetFeatures(backbone, test, 32, &ctx);
  for (int k : {5, 10}) {
    eval::KnnOptions knn_opts;
    knn_opts.k = k;
    auto result =
        eval::KnnClassify(ref, train.labels, query, test.labels, knn_opts);
    ML_CHECK_OK(result.status());
    std::cout << "KNN K=" << k << " accuracy: " << result->accuracy << "\n";
  }
  return 0;
}
