// Adam and AdamW (decoupled weight decay) optimizers.
#ifndef METALORA_OPTIM_ADAM_H_
#define METALORA_OPTIM_ADAM_H_

#include <unordered_map>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace metalora {
namespace optim {

struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
  /// true = AdamW (decay applied to weights directly), false = L2-in-grad.
  bool decoupled_weight_decay = true;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, const AdamOptions& options);

  void Step() override;

  int64_t step_count() const { return t_; }

 private:
  struct Slot {
    Tensor m;
    Tensor v;
  };
  AdamOptions options_;
  std::unordered_map<autograd::VariableImpl*, Slot> slots_;
  int64_t t_ = 0;
};

}  // namespace optim
}  // namespace metalora

#endif  // METALORA_OPTIM_ADAM_H_
