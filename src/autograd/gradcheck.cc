#include "autograd/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "autograd/graph.h"

namespace metalora {
namespace autograd {

namespace {

double EvalScalar(const ScalarFn& f, const std::vector<Tensor>& inputs) {
  NoGradGuard guard;
  std::vector<Variable> vars;
  vars.reserve(inputs.size());
  for (const auto& t : inputs) vars.emplace_back(t, /*requires_grad=*/false);
  Variable out = f(vars);
  ML_CHECK_EQ(out.numel(), 1) << "gradcheck function must return a scalar";
  return static_cast<double>(out.value().flat(0));
}

}  // namespace

GradCheckReport CheckGradients(const ScalarFn& f,
                               const std::vector<Tensor>& inputs,
                               const GradCheckOptions& options) {
  GradCheckReport report;

  // Analytic gradients.
  std::vector<Variable> vars;
  vars.reserve(inputs.size());
  for (const auto& t : inputs) {
    vars.emplace_back(t.Clone(), /*requires_grad=*/true);
  }
  Variable out = f(vars);
  ML_CHECK_EQ(out.numel(), 1) << "gradcheck function must return a scalar";
  ML_CHECK_OK(Backward(out));

  report.passed = true;
  for (size_t vi = 0; vi < vars.size(); ++vi) {
    const Tensor& analytic = vars[vi].grad();
    ML_CHECK(analytic.defined())
        << "no gradient reached input " << vi << " — op graph is broken";
    const int64_t n =
        std::min<int64_t>(inputs[vi].numel(), options.max_elements);
    for (int64_t e = 0; e < n; ++e) {
      // Central difference on element e of input vi.
      std::vector<Tensor> plus, minus;
      for (size_t k = 0; k < inputs.size(); ++k) {
        plus.push_back(inputs[k].Clone());
        minus.push_back(inputs[k].Clone());
      }
      plus[vi].flat(e) += static_cast<float>(options.eps);
      minus[vi].flat(e) -= static_cast<float>(options.eps);
      const double numeric =
          (EvalScalar(f, plus) - EvalScalar(f, minus)) / (2.0 * options.eps);
      const double a = static_cast<double>(analytic.flat(e));
      const double denom =
          std::max({1.0, std::fabs(a), std::fabs(numeric)});
      const double rel = std::fabs(a - numeric) / denom;
      if (rel > report.max_rel_error) {
        report.max_rel_error = rel;
        report.worst_input = static_cast<int>(vi);
        report.worst_element = e;
        report.analytic = a;
        report.numeric = numeric;
      }
      if (rel > options.rel_tol &&
          std::fabs(a - numeric) > options.abs_tol) {
        report.passed = false;
      }
    }
  }
  return report;
}

}  // namespace autograd
}  // namespace metalora
