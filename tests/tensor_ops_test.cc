#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/random_init.h"

namespace metalora {
namespace {

Tensor T22(std::vector<float> v) { return Tensor::FromVector(Shape{2, 2}, v); }

TEST(TensorOpsTest, ElementwiseArithmetic) {
  Tensor a = T22({1, 2, 3, 4});
  Tensor b = T22({5, 6, 7, 8});
  EXPECT_EQ(Add(a, b).ToVector(), (std::vector<float>{6, 8, 10, 12}));
  EXPECT_EQ(Sub(b, a).ToVector(), (std::vector<float>{4, 4, 4, 4}));
  EXPECT_EQ(Mul(a, b).ToVector(), (std::vector<float>{5, 12, 21, 32}));
  EXPECT_EQ(Div(b, a).ToVector(), (std::vector<float>{5, 3, 7.0f / 3, 2}));
  EXPECT_EQ(Scale(a, 2.0f).ToVector(), (std::vector<float>{2, 4, 6, 8}));
  EXPECT_EQ(AddScalar(a, 1.0f).ToVector(), (std::vector<float>{2, 3, 4, 5}));
}

TEST(TensorOpsTest, ShapeMismatchDies) {
  Tensor a = T22({1, 2, 3, 4});
  Tensor b = Tensor::Ones(Shape{4});
  EXPECT_DEATH(Add(a, b), "shape mismatch");
}

TEST(TensorOpsTest, InPlaceOps) {
  Tensor a = T22({1, 2, 3, 4});
  AddInPlace(a, T22({1, 1, 1, 1}));
  EXPECT_EQ(a.ToVector(), (std::vector<float>{2, 3, 4, 5}));
  AxpyInPlace(a, 2.0f, T22({1, 0, 0, 1}));
  EXPECT_EQ(a.ToVector(), (std::vector<float>{4, 3, 4, 7}));
  ScaleInPlace(a, 0.5f);
  EXPECT_EQ(a.ToVector(), (std::vector<float>{2, 1.5, 2, 3.5}));
}

TEST(TensorOpsTest, AddRowBroadcast) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias = Tensor::FromVector(Shape{3}, {10, 20, 30});
  EXPECT_EQ(AddRowBroadcast(a, bias).ToVector(),
            (std::vector<float>{10, 20, 30, 11, 21, 31}));
}

TEST(TensorOpsTest, MapAndZip) {
  Tensor a = T22({1, -2, 3, -4});
  Tensor m = Map(a, [](float v) { return std::fabs(v); });
  EXPECT_EQ(m.ToVector(), (std::vector<float>{1, 2, 3, 4}));
  Tensor z = Zip(a, m, [](float x, float y) { return x + y; });
  EXPECT_EQ(z.ToVector(), (std::vector<float>{2, 0, 6, 0}));
}

TEST(TensorOpsTest, Reductions) {
  Tensor a = T22({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(SumAll(a), 10.0);
  EXPECT_DOUBLE_EQ(MeanAll(a), 2.5);
  EXPECT_EQ(MaxAll(a), 4.0f);
  EXPECT_EQ(MinAll(a), 1.0f);
  EXPECT_NEAR(Norm2(a), std::sqrt(30.0), 1e-9);
}

TEST(TensorOpsTest, SumAxis) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = SumAxis(a, 0);
  EXPECT_EQ(s0.shape(), Shape({3}));
  EXPECT_EQ(s0.ToVector(), (std::vector<float>{5, 7, 9}));
  Tensor s1 = SumAxis(a, 1);
  EXPECT_EQ(s1.ToVector(), (std::vector<float>{6, 15}));
  Tensor sm1 = SumAxis(a, -1);
  EXPECT_EQ(sm1.ToVector(), s1.ToVector());
}

TEST(TensorOpsTest, SumAxisRank3Middle) {
  // [2, 2, 2] summed over axis 1.
  Tensor a = Tensor::FromVector(Shape{2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = SumAxis(a, 1);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{4, 6, 12, 14}));
}

TEST(TensorOpsTest, MeanAxis) {
  Tensor a = Tensor::FromVector(Shape{2, 2}, {2, 4, 6, 8});
  EXPECT_EQ(MeanAxis(a, 0).ToVector(), (std::vector<float>{4, 6}));
}

TEST(TensorOpsTest, ArgmaxRows) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {0, 5, 1, 9, 2, 3});
  EXPECT_EQ(ArgmaxRows(a), (std::vector<int64_t>{1, 0}));
}

TEST(TensorOpsTest, Transpose2D) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(a);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(TensorOpsTest, PermuteMatchesTranspose) {
  Rng rng(1);
  Tensor a = RandomNormal(Shape{4, 5}, rng);
  EXPECT_TRUE(AllClose(Permute(a, {1, 0}), Transpose2D(a)));
}

TEST(TensorOpsTest, PermuteRank3) {
  Tensor a = Tensor::FromVector(Shape{2, 1, 3}, {1, 2, 3, 4, 5, 6});
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), Shape({3, 2, 1}));
  EXPECT_EQ(p.at({0, 0, 0}), 1.0f);
  EXPECT_EQ(p.at({0, 1, 0}), 4.0f);
  EXPECT_EQ(p.at({2, 1, 0}), 6.0f);
}

TEST(TensorOpsTest, PermuteRoundTrip) {
  Rng rng(2);
  Tensor a = RandomNormal(Shape{3, 4, 5}, rng);
  Tensor p = Permute(a, {2, 0, 1});
  Tensor back = Permute(p, {1, 2, 0});
  EXPECT_TRUE(AllClose(back, a));
}

TEST(TensorOpsTest, PermuteInvalidDies) {
  Tensor a = Tensor::Ones(Shape{2, 2});
  EXPECT_DEATH(Permute(a, {0, 0}), "invalid permutation");
  EXPECT_DEATH(Permute(a, {0}), "");
}

TEST(TensorOpsTest, GatherRows) {
  Tensor a = Tensor::FromVector(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), Shape({3, 2}));
  EXPECT_EQ(g.ToVector(), (std::vector<float>{5, 6, 1, 2, 5, 6}));
  EXPECT_DEATH(GatherRows(a, {3}), "out of range");
}

TEST(TensorOpsTest, ConcatRows) {
  Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 2});
  Tensor b = Tensor::FromVector(Shape{2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.shape(), Shape({3, 2}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(TensorOpsTest, OneHot) {
  Tensor oh = OneHot({1, 0, 2}, 3);
  EXPECT_EQ(oh.shape(), Shape({3, 3}));
  EXPECT_EQ(oh.ToVector(),
            (std::vector<float>{0, 1, 0, 1, 0, 0, 0, 0, 1}));
  EXPECT_DEATH(OneHot({3}, 3), "out of range");
}

TEST(TensorOpsTest, AllCloseAndMaxAbsDiff) {
  Tensor a = T22({1, 2, 3, 4});
  Tensor b = T22({1, 2, 3, 4.00001f});
  EXPECT_TRUE(AllClose(a, b));
  Tensor c = T22({1, 2, 3, 5});
  EXPECT_FALSE(AllClose(a, c));
  EXPECT_NEAR(MaxAbsDiff(a, c), 1.0f, 1e-6);
  EXPECT_FALSE(AllClose(a, Tensor::Ones(Shape{4})));  // shape mismatch
}

TEST(RandomInitTest, KaimingVariance) {
  Rng rng(3);
  Tensor w{Shape{256, 64}};
  KaimingNormal(w, rng, 64);
  double sum_sq = 0;
  for (int64_t i = 0; i < w.numel(); ++i)
    sum_sq += static_cast<double>(w.flat(i)) * w.flat(i);
  EXPECT_NEAR(sum_sq / w.numel(), 2.0 / 64.0, 0.003);
}

TEST(RandomInitTest, XavierBounds) {
  Rng rng(4);
  Tensor w{Shape{32, 32}};
  XavierUniform(w, rng, 32, 32);
  const float bound = std::sqrt(6.0f / 64.0f);
  EXPECT_LE(MaxAll(w), bound);
  EXPECT_GE(MinAll(w), -bound);
}

}  // namespace
}  // namespace metalora
