#include "common/table_printer.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace metalora {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  if (ncols == 0) return;

  std::vector<size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&] {
    os << '+';
    for (size_t i = 0; i < ncols; ++i) {
      for (size_t k = 0; k < width[i] + 2; ++k) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << ' ' << cell;
      for (size_t k = cell.size(); k < width[i] + 1; ++k) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.empty()) {
      rule();
    } else {
      emit(r);
    }
  }
  rule();
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace metalora
