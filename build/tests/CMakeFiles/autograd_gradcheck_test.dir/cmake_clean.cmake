file(REMOVE_RECURSE
  "CMakeFiles/autograd_gradcheck_test.dir/autograd_gradcheck_test.cc.o"
  "CMakeFiles/autograd_gradcheck_test.dir/autograd_gradcheck_test.cc.o.d"
  "autograd_gradcheck_test"
  "autograd_gradcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
