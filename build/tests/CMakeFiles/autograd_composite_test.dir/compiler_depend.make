# Empty compiler generated dependencies file for autograd_composite_test.
# This may be replaced when dependencies are built.
