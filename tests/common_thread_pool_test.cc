// ThreadPool correctness, with emphasis on completion-signalling: the
// original ParallelFor synchronized on a stack-local mutex/cv pair that the
// caller could destroy between a worker's counter decrement and its notify
// (use-after-scope). The stress tests here hammer that window; run them
// under TSan (see the tsan CI job) to make the regression loud.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace metalora {
namespace {

TEST(LatchTest, CountsDownToZero) {
  Latch latch(3);
  EXPECT_FALSE(latch.Done());
  latch.CountDown();
  latch.CountDown();
  EXPECT_FALSE(latch.Done());
  latch.CountDown();
  EXPECT_TRUE(latch.Done());
  latch.Wait();  // already zero: returns immediately
}

TEST(LatchTest, WaitBlocksUntilLastCountDown) {
  Latch latch(1);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(ThreadPoolTest, ScheduleRunsEveryTask) {
  ThreadPool pool(3);
  constexpr int kTasks = 64;
  std::atomic<int> ran{0};
  auto latch = std::make_shared<Latch>(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Schedule([&ran, latch] {
      ran.fetch_add(1);
      latch->CountDown();
    });
  }
  latch->Wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsScheduleInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  pool.Schedule([&] {
    ran = true;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  // Inline execution: complete before Schedule returns, no latch needed.
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsParallelForInline) {
  ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> hits(16, 0);
  pool.ParallelFor(0, 16, 1, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kN, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1);
}

// Regression stress for the completion race: thousands of short ParallelFor
// calls whose caller returns (and would have destroyed the old stack-local
// mutex/cv) the instant the counter hits zero, while the last worker may
// still be inside the notify. With the shared-latch fix TSan stays quiet
// and nothing crashes.
TEST(ThreadPoolTest, ParallelForCompletionStress) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int iter = 0; iter < 4000; ++iter) {
    pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
      total.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 4000 * 8);
}

// Concurrent callers from several external threads, each issuing short
// ParallelFor calls against one shared pool — the pattern the op dispatcher
// produces when branch bodies fan their kernels out.
TEST(ThreadPoolTest, ParallelForConcurrentCallersStress) {
  ThreadPool pool(4);
  constexpr int kCallers = 3;
  constexpr int kIters = 500;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int iter = 0; iter < kIters; ++iter) {
        pool.ParallelFor(0, 16, 1, [&](int64_t lo, int64_t hi) {
          total.fetch_add(hi - lo, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), int64_t{kCallers} * kIters * 16);
}

TEST(ThreadPoolTest, InWorkerThreadMarksTaskExecution) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(2);
  std::atomic<bool> marked{false};
  auto latch = std::make_shared<Latch>(1);
  pool.Schedule([&marked, latch] {
    marked.store(ThreadPool::InWorkerThread());
    latch->CountDown();
  });
  latch->Wait();
  EXPECT_TRUE(marked.load());
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

// A ParallelFor issued from inside a pool task must run inline on that
// worker: if it forked, its chunks would queue behind the tasks already
// occupying every worker and the fork could deadlock. This test would hang
// without the inline guard (1 worker, task forks from inside it).
TEST(ThreadPoolTest, NestedParallelForRunsInlineOnWorker) {
  ThreadPool pool(1);
  std::atomic<int64_t> sum{0};
  auto latch = std::make_shared<Latch>(1);
  pool.Schedule([&sum, &pool, latch] {
    const std::thread::id worker = std::this_thread::get_id();
    pool.ParallelFor(0, 32, 1, [&](int64_t lo, int64_t hi) {
      EXPECT_EQ(std::this_thread::get_id(), worker);
      sum.fetch_add(hi - lo);
    });
    latch->CountDown();
  });
  latch->Wait();
  EXPECT_EQ(sum.load(), 32);
}

TEST(ForkJoinReplicasTest, RunsEveryLaneExactlyOnce) {
  ThreadPool pool(3);
  constexpr int kLanes = 8;  // more lanes than workers: excess lanes queue
  std::vector<std::atomic<int>> ran(kLanes);
  for (auto& r : ran) r.store(0);
  pool.ForkJoinReplicas(kLanes, [&](int lane) {
    ASSERT_GE(lane, 0);
    ASSERT_LT(lane, kLanes);
    ran[static_cast<size_t>(lane)].fetch_add(1);
  });
  for (int lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(ran[static_cast<size_t>(lane)].load(), 1) << "lane " << lane;
  }
}

TEST(ForkJoinReplicasTest, ZeroWorkerPoolRunsLanesInOrder) {
  ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  pool.ForkJoinReplicas(4, [&](int lane) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(lane);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ForkJoinReplicasTest, LanesRunWithWorkerInlineGuardSet) {
  // Every lane — scheduled or caller-run — must see the inline-kernel
  // environment: nested ParallelFor stays on the lane's own thread.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> guard_ok(3);
  for (auto& g : guard_ok) g.store(0);
  pool.ForkJoinReplicas(3, [&](int lane) {
    guard_ok[static_cast<size_t>(lane)].store(
        ThreadPool::InWorkerThread() ? 1 : 0);
    const std::thread::id self = std::this_thread::get_id();
    pool.ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
      EXPECT_EQ(std::this_thread::get_id(), self);
    });
  });
  for (int lane = 0; lane < 3; ++lane) {
    EXPECT_EQ(guard_ok[static_cast<size_t>(lane)].load(), 1)
        << "lane " << lane << " ran without the worker-inline guard";
  }
  // The guard is restored after the join on the calling thread.
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ForkJoinReplicasTest, NestedForkRunsSerially) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ForkJoinReplicas(2, [&](int) {
    const std::thread::id self = std::this_thread::get_id();
    // A fork from inside a lane must not re-enter the queue (the outer
    // lanes may occupy every worker): it runs its lanes inline.
    pool.ForkJoinReplicas(3, [&](int) {
      EXPECT_EQ(std::this_thread::get_id(), self);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 6);
}

TEST(ForkJoinReplicasTest, SingleLaneRunsOnCaller) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  int ran = 0;
  pool.ForkJoinReplicas(1, [&](int lane) {
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ForkJoinReplicasTest, ConcurrentWritesToDisjointSlotsStress) {
  // TSan coverage for the trainer's usage pattern: each lane bumps its own
  // arena-like slot many times while the others do the same.
  ThreadPool pool(3);
  constexpr int kLanes = 4, kIters = 200;
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<int64_t> slot(kLanes, 0);
    pool.ForkJoinReplicas(kLanes, [&](int lane) {
      for (int i = 0; i < kIters; ++i) ++slot[static_cast<size_t>(lane)];
    });
    for (int lane = 0; lane < kLanes; ++lane) {
      ASSERT_EQ(slot[static_cast<size_t>(lane)], kIters);
    }
  }
}

}  // namespace
}  // namespace metalora
