// Internal helpers shared by the packed GEMM translation units
// (gemm.cc: fp32 engine + autotune state; gemm_lowp.cc: bf16/int8 tier).
// Not part of the public tensor API — include only from src/tensor.
#ifndef METALORA_TENSOR_GEMM_DETAIL_H_
#define METALORA_TENSOR_GEMM_DETAIL_H_

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "common/check.h"
#include "tensor/gemm.h"

namespace metalora {
namespace gemm_detail {

// Per-precision tile state for the bf16 tier, implemented in gemm_lowp.cc
// next to the bf16 blocked loop its sweep has to time. gemm.cc routes the
// public per-precision tile API here for OpPrecision::kBf16.
GemmTiles Bf16CurrentGemmTiles();
GemmTiles Bf16AutotuneGemmTiles();
bool Bf16GemmTilesAutotuned();

/// Grow-only scratch buffer aligned to a cache line (64 bytes), so vector
/// loads from packed panels never straddle lines and never depend on
/// allocator luck (std::vector<float> only guarantees alignof(float)).
/// Contents are NOT preserved across Reserve() growth — pack scratch is
/// fully rewritten before every use, so nothing is lost.
template <typename T>
class AlignedBuffer {
 public:
  static constexpr size_t kAlign = 64;

  AlignedBuffer() = default;
  ~AlignedBuffer() { std::free(data_); }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  T* data() { return data_; }
  int64_t capacity() const { return cap_; }

  /// Ensures capacity for at least `n` elements. Old contents are dropped
  /// on growth (see class comment).
  void Reserve(int64_t n) {
    if (n <= cap_) return;
    std::free(data_);
    // aligned_alloc requires the size to be a multiple of the alignment.
    const size_t bytes =
        (static_cast<size_t>(n) * sizeof(T) + kAlign - 1) / kAlign * kAlign;
    data_ = static_cast<T*>(std::aligned_alloc(kAlign, bytes));
    ML_CHECK(data_ != nullptr) << "AlignedBuffer: allocation failed";
    cap_ = n;
  }

 private:
  T* data_ = nullptr;
  int64_t cap_ = 0;
};

// A(i, p) of op(A): row-major [n,k], or stored [k,n] when transposed.
inline int64_t AIndex(bool trans_a, int64_t n, int64_t k, int64_t i,
                      int64_t p) {
  return trans_a ? p * n + i : i * k + p;
}

// B(p, j) of op(B): row-major [k,m], or stored [m,k] when transposed.
inline int64_t BIndex(bool trans_b, int64_t k, int64_t m, int64_t p,
                      int64_t j) {
  return trans_b ? j * k + p : p * m + j;
}

// One accumulation step of the serial references and the GEMV paths. When
// the build enables FMA the micro-kernels issue fused multiply-adds, so
// the references must fuse too or the two sides round differently in the
// last bit; without FMA the target has no fused instruction and both
// sides are plain mul-then-add. This is what keeps every reference
// bit-identical to its packed engine in *both* build modes.
inline float MulAddStep(float a, float b, float acc) {
#if defined(__FMA__) && !defined(METALORA_DISABLE_AVX2)
  return std::fmaf(a, b, acc);
#else
  return acc + a * b;
#endif
}

}  // namespace gemm_detail
}  // namespace metalora

#endif  // METALORA_TENSOR_GEMM_DETAIL_H_
