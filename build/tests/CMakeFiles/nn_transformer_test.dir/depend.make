# Empty dependencies file for nn_transformer_test.
# This may be replaced when dependencies are built.
