#include "core/multi_lora.h"

#include <algorithm>

#include "autograd/ops.h"
#include "autograd/parallel.h"
#include "tensor/random_init.h"

namespace metalora {
namespace core {

namespace {

// Binary [N] mask selecting the samples of task `t`. Constant (no grad).
autograd::Variable TaskMask(const std::vector<int64_t>& task_ids, int64_t n,
                            int t, int64_t* count) {
  ML_CHECK_EQ(static_cast<int64_t>(task_ids.size()), n)
      << "oracle-routed Multi-LoRA needs SetTaskIds with the batch's task ids";
  Tensor mask{Shape{n}};
  int64_t c = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (task_ids[static_cast<size_t>(i)] == t) {
      mask.flat(i) = 1.0f;
      ++c;
    }
  }
  *count = c;
  return autograd::Variable(std::move(mask), /*requires_grad=*/false);
}

}  // namespace

MultiLoraLinear::MultiLoraLinear(std::unique_ptr<nn::Linear> base,
                                 const AdapterOptions& options)
    : Adapter("MultiLoraLinear", options) {
  ML_CHECK(base != nullptr);
  ML_CHECK_GE(options.num_tasks, 1);
  const int64_t in = base->in_features();
  const int64_t out = base->out_features();
  const int64_t branch_rank =
      options.multi_lora_split_rank
          ? std::max<int64_t>(1, options.rank / options.num_tasks)
          : options.rank;
  branch_rank_ = branch_rank;
  scaling_ = options.alpha / static_cast<float>(options.rank);
  base_ = RegisterModule("base", std::move(base));
  base_->SetTrainable(false);

  Rng rng(options.seed);
  for (int t = 0; t < options.num_tasks; ++t) {
    Tensor a{Shape{branch_rank, in}};
    KaimingNormal(a, rng, in);
    lora_a_.push_back(
        RegisterParameter("lora_a" + std::to_string(t), std::move(a)));
    lora_b_.push_back(RegisterParameter(
        "lora_b" + std::to_string(t), Tensor::Zeros(Shape{out, branch_rank})));
    if (options.multi_lora_mode == MultiLoraMode::kSum) {
      branch_scale_.push_back(RegisterParameter(
          "scale" + std::to_string(t), Tensor::Ones(Shape{1})));
    }
  }
}

Variable MultiLoraLinear::Forward(const Variable& x) {
  const int64_t n = x.dim(0);
  const std::vector<int64_t>& task_ids = bound_task_ids();
  const bool oracle =
      options_.multi_lora_mode == MultiLoraMode::kOracleRouting;
  // Every per-task adapter branch is independent of the base path and of
  // its siblings; masks are cheap and computed up front so branches stay
  // pure. Branch sums are applied in task order at the join, keeping the
  // result bit-identical to the serial loop.
  autograd::ParallelScope ps;
  ps.Spawn([&] { return base_->Forward(x); });
  for (int t = 0; t < options_.num_tasks; ++t) {
    Variable mask;
    if (oracle) {
      int64_t count = 0;
      mask = TaskMask(task_ids, n, t, &count);
      if (count == 0) continue;
    }
    ps.Spawn([this, &x, t, mask] {
      Variable h =
          autograd::Linear(x, lora_a_[static_cast<size_t>(t)], Variable());
      Variable d =
          autograd::Linear(h, lora_b_[static_cast<size_t>(t)], Variable());
      if (mask.defined()) {
        d = autograd::ScaleRows(d, mask);
      } else {
        d = autograd::MulScalarVar(d, branch_scale_[static_cast<size_t>(t)]);
      }
      return autograd::Scale(d, scaling_);
    });
  }
  std::vector<Variable> branches = ps.Join();
  Variable y = branches[0];
  for (size_t b = 1; b < branches.size(); ++b) {
    y = autograd::Add(y, branches[b]);
  }
  return y;
}

int64_t MultiLoraLinear::AdapterParamCount() const {
  int64_t total = 0;
  for (const auto& a : lora_a_) total += a.numel();
  for (const auto& b : lora_b_) total += b.numel();
  for (const auto& s : branch_scale_) total += s.numel();
  return total;
}

MultiLoraConv::MultiLoraConv(std::unique_ptr<nn::Conv2d> base,
                             const AdapterOptions& options)
    : Adapter("MultiLoraConv", options) {
  ML_CHECK(base != nullptr);
  ML_CHECK_GE(options.num_tasks, 1);
  const int64_t in = base->in_channels();
  const int64_t out = base->out_channels();
  const int64_t k = base->geom().kernel_h;
  const int64_t branch_rank =
      options.multi_lora_split_rank
          ? std::max<int64_t>(1, options.rank / options.num_tasks)
          : options.rank;
  branch_rank_ = branch_rank;
  scaling_ = options.alpha / static_cast<float>(options.rank);
  base_ = RegisterModule("base", std::move(base));
  base_->SetTrainable(false);

  Rng rng(options.seed);
  for (int t = 0; t < options.num_tasks; ++t) {
    Tensor a{Shape{branch_rank, in, k, k}};
    KaimingNormal(a, rng, in * k * k);
    lora_a_.push_back(
        RegisterParameter("lora_a" + std::to_string(t), std::move(a)));
    lora_b_.push_back(RegisterParameter(
        "lora_b" + std::to_string(t), Tensor::Zeros(Shape{out, branch_rank})));
    if (options.multi_lora_mode == MultiLoraMode::kSum) {
      branch_scale_.push_back(RegisterParameter(
          "scale" + std::to_string(t), Tensor::Ones(Shape{1})));
    }
  }
}

Variable MultiLoraConv::Forward(const Variable& x) {
  const int64_t n = x.dim(0);
  const int64_t out = base_->out_channels();
  const std::vector<int64_t>& task_ids = bound_task_ids();
  const bool oracle =
      options_.multi_lora_mode == MultiLoraMode::kOracleRouting;
  ConvGeom pointwise;
  pointwise.kernel_h = 1;
  pointwise.kernel_w = 1;
  autograd::ParallelScope ps;
  ps.Spawn([&] { return base_->Forward(x); });
  for (int t = 0; t < options_.num_tasks; ++t) {
    Variable mask;
    if (oracle) {
      int64_t count = 0;
      mask = TaskMask(task_ids, n, t, &count);
      if (count == 0) continue;
    }
    ps.Spawn([this, &x, t, mask, out, pointwise] {
      Variable h = autograd::Conv2d(x, lora_a_[static_cast<size_t>(t)],
                                    Variable(), base_->geom());
      Variable b4 = autograd::Reshape(lora_b_[static_cast<size_t>(t)],
                                      Shape{out, branch_rank_, 1, 1});
      Variable d = autograd::Conv2d(h, b4, Variable(), pointwise);
      if (mask.defined()) {
        d = autograd::ScaleRows(d, mask);
      } else {
        d = autograd::MulScalarVar(d, branch_scale_[static_cast<size_t>(t)]);
      }
      return autograd::Scale(d, scaling_);
    });
  }
  std::vector<Variable> branches = ps.Join();
  Variable y = branches[0];
  for (size_t b = 1; b < branches.size(); ++b) {
    y = autograd::Add(y, branches[b]);
  }
  return y;
}

int64_t MultiLoraConv::AdapterParamCount() const {
  int64_t total = 0;
  for (const auto& a : lora_a_) total += a.numel();
  for (const auto& b : lora_b_) total += b.numel();
  for (const auto& s : branch_scale_) total += s.numel();
  return total;
}

}  // namespace core
}  // namespace metalora
