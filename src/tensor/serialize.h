// Binary tensor (de)serialization.
//
// Format (little-endian):
//   magic "MLTN"  | u32 version | u32 rank | i64 dims[rank] | f32 data[numel]
// A named collection ("checkpoint") is a count-prefixed sequence of
// (string name, tensor) pairs with magic "MLCK".
#ifndef METALORA_TENSOR_SERIALIZE_H_
#define METALORA_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace metalora {

/// Writes one tensor to a stream.
Status WriteTensor(std::ostream& os, const Tensor& t);

/// Reads one tensor from a stream. Fails with Corruption on bad magic,
/// absurd ranks/dims or truncated data.
Result<Tensor> ReadTensor(std::istream& is);

/// Saves a named map of tensors to `path` atomically: the bytes are written
/// to `<path>.tmp` and renamed into place only after a clean flush, so the
/// final path never holds a torn checkpoint (a failed save returns IOError,
/// removes the temp file, and leaves any previous checkpoint untouched).
Status SaveTensorMap(const std::string& path,
                     const std::map<std::string, Tensor>& tensors);

/// Loads a named map of tensors from `path`.
Result<std::map<std::string, Tensor>> LoadTensorMap(const std::string& path);

}  // namespace metalora

#endif  // METALORA_TENSOR_SERIALIZE_H_
