#include "nn/linear.h"

#include "autograd/ops.h"
#include "tensor/random_init.h"

namespace metalora {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias, Rng& rng)
    : Module("Linear"),
      in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  Tensor w{Shape{out_features_, in_features_}};
  KaimingNormal(w, rng, in_features_);
  weight_ = RegisterParameter("weight", std::move(w));
  if (has_bias_) {
    bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{out_features_}));
  }
}

Variable Linear::Forward(const Variable& x) {
  return autograd::Linear(x, weight_, has_bias_ ? bias_ : Variable());
}

}  // namespace nn
}  // namespace metalora
