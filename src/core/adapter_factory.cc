#include "core/adapter_factory.h"

#include <utility>

#include "common/rng.h"
#include "core/conv_lora.h"
#include "core/lora_linear.h"
#include "core/lotr_adapter.h"
#include "core/metalora_conv.h"
#include "core/metalora_linear.h"
#include "core/moe_lora.h"
#include "core/multi_lora.h"
#include "core/tt_adapter.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace metalora {
namespace core {

namespace {

Result<std::unique_ptr<Adapter>> BuildLinearAdapter(const AdapterSpec& spec) {
  const BaseLayerSpec& b = spec.base;
  Rng rng(b.init_seed);
  auto base = std::make_unique<nn::Linear>(b.in_features, b.out_features,
                                           b.bias, rng);
  switch (spec.options.kind) {
    case AdapterKind::kLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<LoraLinear>(std::move(base), spec.options));
    case AdapterKind::kMultiLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<MultiLoraLinear>(std::move(base), spec.options));
    case AdapterKind::kMoeLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<MoeLoraLinear>(std::move(base), spec.options));
    case AdapterKind::kMetaLoraCp:
      return std::unique_ptr<Adapter>(
          std::make_unique<MetaLoraCpLinear>(std::move(base), spec.options));
    case AdapterKind::kMetaLoraTr:
      return std::unique_ptr<Adapter>(
          std::make_unique<MetaLoraTrLinear>(std::move(base), spec.options));
    case AdapterKind::kLotr:
    case AdapterKind::kMetaLotr:
      return std::unique_ptr<Adapter>(
          std::make_unique<LotrLinear>(std::move(base), spec.options));
    case AdapterKind::kTt:
    case AdapterKind::kMetaTt:
      return std::unique_ptr<Adapter>(
          std::make_unique<TtLinear>(std::move(base), spec.options));
    case AdapterKind::kNone:
      break;
  }
  return Status::InvalidArgument("no adapter to build for kind 'Original'");
}

Result<std::unique_ptr<Adapter>> BuildConvAdapter(const AdapterSpec& spec) {
  const BaseLayerSpec& b = spec.base;
  Rng rng(b.init_seed);
  auto base = std::make_unique<nn::Conv2d>(b.in_channels, b.out_channels,
                                           b.kernel, b.stride, b.padding,
                                           b.bias, rng);
  switch (spec.options.kind) {
    case AdapterKind::kLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<ConvLora>(std::move(base), spec.options));
    case AdapterKind::kMultiLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<MultiLoraConv>(std::move(base), spec.options));
    case AdapterKind::kMoeLora:
      return std::unique_ptr<Adapter>(
          std::make_unique<MoeLoraConv>(std::move(base), spec.options));
    case AdapterKind::kMetaLoraCp:
      return std::unique_ptr<Adapter>(
          std::make_unique<MetaLoraCpConv>(std::move(base), spec.options));
    case AdapterKind::kMetaLoraTr:
      return std::unique_ptr<Adapter>(
          std::make_unique<MetaLoraTrConv>(std::move(base), spec.options));
    case AdapterKind::kLotr:
    case AdapterKind::kMetaLotr:
      return std::unique_ptr<Adapter>(
          std::make_unique<LotrConv>(std::move(base), spec.options));
    case AdapterKind::kTt:
    case AdapterKind::kMetaTt:
      return std::unique_ptr<Adapter>(
          std::make_unique<TtConv>(std::move(base), spec.options));
    case AdapterKind::kNone:
      break;
  }
  return Status::InvalidArgument("no adapter to build for kind 'Original'");
}

}  // namespace

AdapterSpec LinearAdapterSpec(AdapterKind kind, int64_t in_features,
                              int64_t out_features, int64_t rank,
                              int64_t feature_dim, uint64_t seed) {
  AdapterSpec spec;
  spec.options.kind = kind;
  spec.options.rank = rank;
  spec.options.feature_dim = feature_dim;
  spec.options.seed = seed;
  spec.base.kind = BaseLayerKind::kLinear;
  spec.base.in_features = in_features;
  spec.base.out_features = out_features;
  spec.base.init_seed = seed ^ 0x9E3779B97F4A7C15ull;
  return spec;
}

AdapterSpec ConvAdapterSpec(AdapterKind kind, int64_t in_channels,
                            int64_t out_channels, int64_t kernel, int64_t rank,
                            int64_t feature_dim, uint64_t seed) {
  AdapterSpec spec;
  spec.options.kind = kind;
  spec.options.rank = rank;
  spec.options.feature_dim = feature_dim;
  spec.options.seed = seed;
  spec.base.kind = BaseLayerKind::kConv2d;
  spec.base.in_channels = in_channels;
  spec.base.out_channels = out_channels;
  spec.base.kernel = kernel;
  spec.base.init_seed = seed ^ 0x9E3779B97F4A7C15ull;
  return spec;
}

Status ValidateAdapterSpec(const AdapterSpec& spec) {
  Status s = ValidateAdapterOptions(spec.options);
  if (!s.ok()) return s;
  if (spec.options.kind == AdapterKind::kNone) {
    return Status::InvalidArgument(
        "options.kind: 'Original' (kNone) describes no adapter to build");
  }
  // 2^20 caps every base dimension: far above any layer this codebase
  // instantiates, low enough that a corrupt spec cannot drive allocation.
  constexpr int64_t kMaxDim = int64_t{1} << 20;
  switch (spec.base.kind) {
    case BaseLayerKind::kLinear:
      if (spec.base.in_features <= 0 || spec.base.in_features > kMaxDim) {
        return Status::InvalidArgument(
            "base.in_features: must be in (0, 2^20], got " +
            std::to_string(spec.base.in_features));
      }
      if (spec.base.out_features <= 0 || spec.base.out_features > kMaxDim) {
        return Status::InvalidArgument(
            "base.out_features: must be in (0, 2^20], got " +
            std::to_string(spec.base.out_features));
      }
      return Status::OK();
    case BaseLayerKind::kConv2d:
      if (spec.base.in_channels <= 0 || spec.base.in_channels > kMaxDim) {
        return Status::InvalidArgument(
            "base.in_channels: must be in (0, 2^20], got " +
            std::to_string(spec.base.in_channels));
      }
      if (spec.base.out_channels <= 0 || spec.base.out_channels > kMaxDim) {
        return Status::InvalidArgument(
            "base.out_channels: must be in (0, 2^20], got " +
            std::to_string(spec.base.out_channels));
      }
      if (spec.base.kernel <= 0 || spec.base.kernel > 31) {
        return Status::InvalidArgument(
            "base.kernel: must be in (0, 31], got " +
            std::to_string(spec.base.kernel));
      }
      if (spec.base.stride <= 0 || spec.base.stride > spec.base.kernel) {
        return Status::InvalidArgument(
            "base.stride: must be in (0, kernel], got " +
            std::to_string(spec.base.stride));
      }
      if (spec.base.padding < 0 || spec.base.padding > spec.base.kernel) {
        return Status::InvalidArgument(
            "base.padding: must be in [0, kernel], got " +
            std::to_string(spec.base.padding));
      }
      return Status::OK();
  }
  return Status::InvalidArgument(
      "base.kind: unknown base layer kind " +
      std::to_string(static_cast<int>(spec.base.kind)));
}

Result<std::unique_ptr<Adapter>> BuildAdapter(const AdapterSpec& spec) {
  Status s = ValidateAdapterSpec(spec);
  if (!s.ok()) return s;
  switch (spec.base.kind) {
    case BaseLayerKind::kLinear:
      return BuildLinearAdapter(spec);
    case BaseLayerKind::kConv2d:
      return BuildConvAdapter(spec);
  }
  return Status::InvalidArgument("unknown base layer kind");
}

}  // namespace core
}  // namespace metalora
