#include <gtest/gtest.h>

#include <cmath>

#include "autograd/graph.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace autograd {
namespace {

TEST(VariableTest, LeafBasics) {
  Variable v(Tensor::Ones(Shape{2, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.producer(), nullptr);
  EXPECT_FALSE(v.grad().defined());
}

TEST(VariableTest, CopiesShareState) {
  Variable a(Tensor::Ones(Shape{2}), true);
  Variable b = a;
  b.mutable_value().flat(0) = 5.0f;
  EXPECT_EQ(a.value().flat(0), 5.0f);
  b.AccumulateGrad(Tensor::Ones(Shape{2}));
  EXPECT_TRUE(a.grad().defined());
}

TEST(VariableTest, AccumulateGradAdds) {
  Variable v(Tensor::Zeros(Shape{2}), true);
  v.AccumulateGrad(Tensor::Ones(Shape{2}));
  v.AccumulateGrad(Tensor::Ones(Shape{2}));
  EXPECT_EQ(v.grad().flat(0), 2.0f);
  v.ZeroGrad();
  EXPECT_FALSE(v.grad().defined());
}

TEST(VariableTest, GradShapeMismatchDies) {
  Variable v(Tensor::Zeros(Shape{2}), true);
  EXPECT_DEATH(v.AccumulateGrad(Tensor::Ones(Shape{3})), "shape");
}

TEST(VariableTest, DetachDropsHistory) {
  Variable a(Tensor::Ones(Shape{2}), true);
  Variable b = Scale(a, 2.0f);
  EXPECT_NE(b.producer(), nullptr);
  Variable d = b.Detach();
  EXPECT_EQ(d.producer(), nullptr);
  EXPECT_FALSE(d.requires_grad());
  EXPECT_TRUE(AllClose(d.value(), b.value()));
}

TEST(BackwardTest, SimpleChain) {
  Variable x(Tensor::Ones(Shape{3}), true);
  Variable loss = SumAll(Scale(x, 2.0f));
  ASSERT_TRUE(Backward(loss).ok());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(x.grad().flat(i), 2.0f);
}

TEST(BackwardTest, SharedSubexpressionAccumulates) {
  Variable x(Tensor::Ones(Shape{2}), true);
  Variable y = Add(x, x);
  ASSERT_TRUE(Backward(SumAll(y)).ok());
  EXPECT_EQ(x.grad().flat(0), 2.0f);
}

TEST(BackwardTest, DiamondDag) {
  Variable x(Tensor::Full(Shape{1}, 3.0f), true);
  Variable a = Mul(x, x);
  Variable b = Mul(x, x);
  ASSERT_TRUE(Backward(SumAll(Add(a, b))).ok());
  // d/dx 2x² = 4x = 12.
  EXPECT_NEAR(x.grad().flat(0), 12.0f, 1e-5);
}

TEST(BackwardTest, DeepSharedDag) {
  Variable x(Tensor::Ones(Shape{2}), true);
  Variable h = Add(x, x);
  Variable k = Add(h, h);
  ASSERT_TRUE(Backward(SumAll(k)).ok());
  EXPECT_EQ(x.grad().flat(0), 4.0f);
}

TEST(BackwardTest, NonScalarRootRejected) {
  Variable x(Tensor::Ones(Shape{3}), true);
  Variable y = Scale(x, 2.0f);
  EXPECT_EQ(Backward(y).code(), StatusCode::kInvalidArgument);
}

TEST(BackwardTest, SeededBackward) {
  Variable x(Tensor::Ones(Shape{3}), true);
  Variable y = Scale(x, 3.0f);
  Tensor seed = Tensor::FromVector(Shape{3}, {1, 2, 3});
  ASSERT_TRUE(BackwardWithGrad(y, seed).ok());
  EXPECT_EQ(x.grad().ToVector(), (std::vector<float>{3, 6, 9}));
}

TEST(BackwardTest, NoGradInputGetsNoGradient) {
  Variable x(Tensor::Ones(Shape{2}), true);
  Variable frozen(Tensor::Ones(Shape{2}), false);
  ASSERT_TRUE(Backward(SumAll(Mul(x, frozen))).ok());
  EXPECT_TRUE(x.grad().defined());
  EXPECT_FALSE(frozen.grad().defined());
}

TEST(BackwardTest, RootWithoutGraphRejected) {
  Variable x(Tensor::Scalar(1.0f), false);
  EXPECT_EQ(Backward(x).code(), StatusCode::kInvalidArgument);
}

TEST(NoGradTest, SuppressesGraphConstruction) {
  Variable x(Tensor::Ones(Shape{2}), true);
  {
    NoGradGuard guard;
    Variable y = Scale(x, 2.0f);
    EXPECT_EQ(y.producer(), nullptr);
    EXPECT_FALSE(y.requires_grad());
  }
  Variable z = Scale(x, 2.0f);
  EXPECT_NE(z.producer(), nullptr);
}

TEST(NoGradTest, Nests) {
  EXPECT_TRUE(GradEnabled());
  {
    NoGradGuard a;
    EXPECT_FALSE(GradEnabled());
    {
      NoGradGuard b;
      EXPECT_FALSE(GradEnabled());
    }
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_TRUE(GradEnabled());
}

TEST(BackwardTest, BackwardTwiceAccumulatesIntoLeaves) {
  Variable x(Tensor::Ones(Shape{2}), true);
  Variable loss = SumAll(Scale(x, 1.0f));
  ASSERT_TRUE(Backward(loss).ok());
  ASSERT_TRUE(Backward(loss).ok());
  EXPECT_EQ(x.grad().flat(0), 2.0f);
}

TEST(OpsShapeTest, ReshapeAndPermuteGradientsRestoreLayout) {
  Rng rng(1);
  Variable x(RandomNormal(Shape{2, 3}, rng), true);
  Variable y = Permute(Reshape(x, Shape{3, 2}), {1, 0});
  ASSERT_TRUE(Backward(SumAll(Mul(y, y))).ok());
  EXPECT_TRUE(AllClose(x.grad(), Scale(x.value(), 2.0f), 1e-4f, 1e-5f));
}

TEST(OpsTest, ConcatRowsSplitsGradient) {
  Variable a(Tensor::Ones(Shape{1, 2}), true);
  Variable b(Tensor::Ones(Shape{2, 2}), true);
  Variable c = ConcatRows({a, b});
  EXPECT_EQ(c.shape(), Shape({3, 2}));
  Tensor seed = Tensor::FromVector(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(BackwardWithGrad(c, seed).ok());
  EXPECT_EQ(a.grad().ToVector(), (std::vector<float>{1, 2}));
  EXPECT_EQ(b.grad().ToVector(), (std::vector<float>{3, 4, 5, 6}));
}

TEST(OpsTest, DropoutEvalIsIdentity) {
  Rng rng(3);
  Variable x(Tensor::Ones(Shape{100}), true);
  Variable y = Dropout(x, 0.5f, /*training=*/false, rng);
  EXPECT_TRUE(AllClose(y.value(), x.value()));
}

TEST(OpsTest, DropoutTrainingMasksAndRescales) {
  Rng rng(4);
  Variable x(Tensor::Ones(Shape{10000}), true);
  Variable y = Dropout(x, 0.5f, /*training=*/true, rng);
  int64_t zeros = 0;
  double sum = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.value().flat(i);
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6);
    if (v == 0.0f) ++zeros;
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.05);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.05);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Variable x(RandomNormal(Shape{4, 7}, rng), false);
  Variable p = Softmax(x);
  for (int64_t i = 0; i < 4; ++i) {
    double row = 0;
    for (int64_t j = 0; j < 7; ++j) row += p.value().flat(i * 7 + j);
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(OpsTest, CrossEntropyOfPerfectPredictionIsSmall) {
  Tensor logits{Shape{2, 3}};
  logits.at({0, 1}) = 50.0f;
  logits.at({1, 2}) = 50.0f;
  Variable x(logits, false);
  Variable loss = SoftmaxCrossEntropy(x, {1, 2});
  EXPECT_LT(loss.value().flat(0), 1e-4f);
}

TEST(OpsTest, CrossEntropyUniformIsLogC) {
  Variable x(Tensor::Zeros(Shape{4, 8}), false);
  Variable loss = SoftmaxCrossEntropy(x, {0, 1, 2, 3});
  EXPECT_NEAR(loss.value().flat(0), std::log(8.0f), 1e-4);
}

TEST(OpsTest, CrossEntropyBadLabelDies) {
  Variable x(Tensor::Zeros(Shape{1, 3}), false);
  EXPECT_DEATH(SoftmaxCrossEntropy(x, {3}), "label out of range");
}

TEST(OpsTest, BatchNormUpdatesRunningStatsOnlyInTraining) {
  Rng rng(6);
  Variable x(RandomNormal(Shape{4, 2, 3, 3}, rng, 5.0f, 2.0f), false);
  Variable gamma(Tensor::Ones(Shape{2}), true);
  Variable beta(Tensor::Zeros(Shape{2}), true);
  Tensor rm = Tensor::Zeros(Shape{2});
  Tensor rv = Tensor::Ones(Shape{2});

  Variable y = BatchNorm2d(x, gamma, beta, rm, rv, /*training=*/true, 0.1f,
                           1e-5f);
  // Output is normalized per channel.
  for (int64_t c = 0; c < 2; ++c) {
    double sum = 0, sum_sq = 0;
    for (int64_t n = 0; n < 4; ++n)
      for (int64_t s = 0; s < 9; ++s) {
        const float v = y.value().flat((n * 2 + c) * 9 + s);
        sum += v;
        sum_sq += static_cast<double>(v) * v;
      }
    EXPECT_NEAR(sum / 36.0, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / 36.0, 1.0, 1e-2);
  }
  // Running stats moved toward the batch stats.
  EXPECT_GT(rm.flat(0), 0.0f);

  Tensor rm_before = rm.Clone(), rv_before = rv.Clone();
  Variable y2 = BatchNorm2d(x, gamma, beta, rm, rv, /*training=*/false, 0.1f,
                            1e-5f);
  EXPECT_TRUE(AllClose(rm, rm_before));
  EXPECT_TRUE(AllClose(rv, rv_before));
}

TEST(OpsTest, LayerNormNormalizesLastDim) {
  Rng rng(7);
  Variable x(RandomNormal(Shape{3, 16}, rng, -2.0f, 3.0f), false);
  Variable gamma(Tensor::Ones(Shape{16}), false);
  Variable beta(Tensor::Zeros(Shape{16}), false);
  Variable y = LayerNorm(x, gamma, beta, 1e-5f);
  for (int64_t r = 0; r < 3; ++r) {
    double sum = 0, sum_sq = 0;
    for (int64_t j = 0; j < 16; ++j) {
      const float v = y.value().flat(r * 16 + j);
      sum += v;
      sum_sq += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(sum / 16.0, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / 16.0, 1.0, 2e-2);
  }
}

}  // namespace
}  // namespace autograd
}  // namespace metalora
