// Packed GEMM engine throughput vs the retained naive reference.
//
// Times GemmPacked against GemmReference on paper-relevant shapes — LoRA
// rank-R skinny matmuls (Eq. 5 adapters), ResNet conv-as-GEMM panels, KNN
// distance matrices, and square controls — reporting GFLOP/s per shape
// and writing BENCH_gemm.json. Two contracts are enforced:
//
//   1. Correctness (always, including --smoke): the packed engine must be
//      bit-identical to the reference for every shape/layout here. This is
//      the CI guard for the vectorized path.
//   2. Throughput (skipped under --smoke so weak CI runners don't flake):
//      the 512×512×512 case must beat the naive reference by >= 2x.
//
// The low-precision tier gets its own section and contracts:
//
//   3. Correctness (always): bf16 dynamic == bf16 prepacked ==
//      GemmReferenceBf16 bitwise, and int8 prepacked == GemmReferenceInt8
//      bitwise, for every precision shape (including an odd-tail one).
//   4. Throughput (skipped under --smoke): prepacked bf16 must beat the
//      fp32 packed engine by >= 1.5x on the memory-bound serving shape
//      (6 activation rows against a 2048x2048 frozen weight — the GEMM
//      is bandwidth-bound, and the prepacked weight streams half the
//      bytes with zero repacking).
//
// Flags: --smoke (1 rep, no perf assertion), --reps=N (packed-kernel rep
// override), --profile (per-shape RuntimeContext op table at exit; the
// trailer reports per-precision GEMM dispatch counts).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "autograd/runtime_context.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "tensor/gemm.h"
#include "tensor/lowp.h"
#include "tensor/random_init.h"
#include "tensor/tensor.h"

using namespace metalora;  // NOLINT

namespace {

struct GemmCase {
  const char* name;
  int64_t n, k, m;
  bool trans_a, trans_b;
};

// Shapes mirror the library's hot paths: LoRA down/up projections run as
// x·Wᵀ (trans_b, like autograd::Linear), conv-as-GEMM panels as W·cols,
// KNN distance blocks as Q·Rᵀ, and backward dW as gᵀ·x (trans_a).
constexpr GemmCase kCases[] = {
    {"square_256", 256, 256, 256, false, false},
    {"square_512", 512, 512, 512, false, false},
    {"lora_down_r8", 64, 1024, 8, false, true},
    {"lora_up_r8", 64, 8, 1024, false, true},
    {"lora_down_r1", 64, 1024, 1, false, true},
    {"conv3x3_gemm", 64, 576, 196, false, false},
    {"knn_dist", 128, 64, 2048, false, true},
    {"backward_dW_transA", 256, 64, 256, true, false},
};

struct CaseResult {
  double ref_gflops = 0.0;
  double packed_gflops = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

double TimeKernel(const std::function<void()>& run, int reps) {
  run();  // warm-up: settles packing scratch capacity
  Timer t;
  for (int i = 0; i < reps; ++i) run();
  return t.Seconds() / reps;
}

CaseResult RunCase(const GemmCase& c, int packed_reps, int ref_reps,
                   autograd::RuntimeContext& ctx) {
  Rng rng(static_cast<uint64_t>(c.n * 131 + c.k * 17 + c.m));
  const Shape a_shape = c.trans_a ? Shape{c.k, c.n} : Shape{c.n, c.k};
  const Shape b_shape = c.trans_b ? Shape{c.m, c.k} : Shape{c.k, c.m};
  Tensor a = RandomNormal(a_shape, rng);
  Tensor b = RandomNormal(b_shape, rng);
  Tensor c_ref{Shape{c.n, c.m}};
  Tensor c_packed{Shape{c.n, c.m}};

  const double flops = 2.0 * static_cast<double>(c.n) *
                       static_cast<double>(c.k) * static_cast<double>(c.m);

  const double ref_sec = TimeKernel(
      [&] {
        GemmReference(a.data(), c.trans_a, b.data(), c.trans_b, c_ref.data(),
                      c.n, c.k, c.m, /*accumulate=*/false);
      },
      ref_reps);

  Timer packed_timer;
  const double packed_sec = TimeKernel(
      [&] {
        GemmPacked(a.data(), c.trans_a, b.data(), c.trans_b, c_packed.data(),
                   c.n, c.k, c.m, /*accumulate=*/false);
      },
      packed_reps);
  if (ctx.profiling()) {
    ctx.RecordForward(c.name,
                      c.n * c.m * static_cast<int64_t>(sizeof(float)),
                      static_cast<int64_t>(packed_timer.Seconds() * 1e9));
  }

  CaseResult r;
  r.ref_gflops = flops / ref_sec * 1e-9;
  r.packed_gflops = flops / packed_sec * 1e-9;
  r.speedup = ref_sec / packed_sec;
  r.bit_identical = true;
  for (int64_t i = 0; i < c_ref.numel(); ++i) {
    if (c_ref.flat(i) != c_packed.flat(i)) {
      r.bit_identical = false;
      std::cout << "MISMATCH " << c.name << " at flat index " << i << ": ref "
                << c_ref.flat(i) << " vs packed " << c_packed.flat(i) << "\n";
      break;
    }
  }
  return r;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Low-precision tier
// ---------------------------------------------------------------------------

// All shapes run as x·Wᵀ or A·B with A row-major (the layouts the prepacked
// forms serve). serve_linear_6x2048 is the memory-bound contract shape:
// 6 activation rows (one micro-tile) against a 2048x2048 frozen weight,
// ~50 MFLOP over a 16 MB fp32 weight read — bandwidth, not FLOPs, is the
// limiter. The dynamic fp32 path streams the weight plus a same-sized pack
// write+read per call; the bf16 prepacked path reads 2 bytes/element once,
// so it should land well past the 1.5x bar.
struct PrecisionCase {
  const char* name;
  int64_t n, k, m;
  bool trans_b;
};

constexpr PrecisionCase kPrecisionCases[] = {
    {"serve_linear_6x2048", 6, 2048, 2048, true},
    {"knn_dist", 128, 64, 2048, true},
    {"square_256", 256, 256, 256, false},
    {"lora_up_r8", 64, 8, 1024, true},
    {"odd_tail_7x131x61", 7, 131, 61, true},
};

struct PrecisionRow {
  const char* shape;
  const char* variant;    // "bf16" / "bf16-prepacked" / "int8-prepacked"
  const char* precision;  // "bf16" / "int8"
  double gflops = 0.0;
  double speedup_vs_fp32 = 0.0;
  bool bit_identical = false;
};

std::vector<PrecisionRow> RunPrecisionCase(const PrecisionCase& c,
                                           int packed_reps,
                                           autograd::RuntimeContext& ctx) {
  Rng rng(static_cast<uint64_t>(c.n * 257 + c.k * 31 + c.m));
  Tensor a = RandomNormal(Shape{c.n, c.k}, rng);
  Tensor b =
      RandomNormal(c.trans_b ? Shape{c.m, c.k} : Shape{c.k, c.m}, rng);
  Tensor out{Shape{c.n, c.m}};
  Tensor oracle{Shape{c.n, c.m}};
  const double flops = 2.0 * static_cast<double>(c.n) *
                       static_cast<double>(c.k) * static_cast<double>(c.m);

  // fp32 packed baseline for the speedup column.
  ctx.RecordGemmDispatch(OpPrecision::kFp32);
  const double fp32_sec = TimeKernel(
      [&] {
        GemmPacked(a.data(), false, b.data(), c.trans_b, out.data(), c.n, c.k,
                   c.m, /*accumulate=*/false);
      },
      packed_reps);

  const auto check = [&](const Tensor& got, const Tensor& want) {
    for (int64_t i = 0; i < want.numel(); ++i) {
      if (got.flat(i) != want.flat(i)) {
        std::cout << "MISMATCH " << c.name << " at flat index " << i << ": "
                  << got.flat(i) << " vs oracle " << want.flat(i) << "\n";
        return false;
      }
    }
    return true;
  };

  std::vector<PrecisionRow> rows;

  // bf16, dynamic packing (oracle: serial bf16 reference).
  GemmReferenceBf16(a.data(), false, b.data(), c.trans_b, oracle.data(), c.n,
                    c.k, c.m, /*accumulate=*/false);
  ctx.RecordGemmDispatch(OpPrecision::kBf16);
  const double bf16_sec = TimeKernel(
      [&] {
        GemmPackedBf16(a.data(), false, b.data(), c.trans_b, out.data(), c.n,
                       c.k, c.m, /*accumulate=*/false);
      },
      packed_reps);
  rows.push_back({c.name, "bf16", "bf16", flops / bf16_sec * 1e-9,
                  fp32_sec / bf16_sec, check(out, oracle)});

  // bf16, prepacked weight (pack once outside the timed region — the
  // serving pattern). Must land on the same bits as the dynamic path.
  const lowp::Bf16PackedWeight bw =
      lowp::PackBf16Weight(b.data(), c.trans_b, c.k, c.m);
  ctx.RecordGemmDispatch(OpPrecision::kBf16);
  const double bf16p_sec = TimeKernel(
      [&] {
        lowp::GemmBf16Prepacked(a.data(), bw, out.data(), c.n,
                                /*accumulate=*/false);
      },
      packed_reps);
  rows.push_back({c.name, "bf16-prepacked", "bf16",
                  flops / bf16p_sec * 1e-9, fp32_sec / bf16p_sec,
                  check(out, oracle)});

  // int8, prepacked weight (oracle: serial int8 quantization model).
  lowp::GemmReferenceInt8(a.data(), b.data(), c.trans_b, oracle.data(), c.n,
                          c.k, c.m, /*accumulate=*/false);
  const lowp::Int8PackedWeight iw =
      lowp::PackInt8Weight(b.data(), c.trans_b, c.k, c.m);
  ctx.RecordGemmDispatch(OpPrecision::kInt8);
  const double int8_sec = TimeKernel(
      [&] {
        lowp::GemmInt8Prepacked(a.data(), iw, out.data(), c.n,
                                /*accumulate=*/false);
      },
      packed_reps);
  rows.push_back({c.name, "int8-prepacked", "int8",
                  flops / int8_sec * 1e-9, fp32_sec / int8_sec,
                  check(out, oracle)});
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli;
  cli.AddBool("smoke", false,
              "1 rep per kernel, skip throughput assertions (CI correctness "
              "guard on weak runners)");
  cli.AddInt("reps", 0, "override packed-kernel reps (0 = auto by FLOPs)");
  cli.AddBool("profile", false,
              "record per-shape timings in the RuntimeContext and dump the "
              "op table at exit");
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << cli.Usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.Usage(argv[0]);
    return 0;
  }
  const bool smoke = cli.GetBool("smoke");
  const bool profile = cli.GetBool("profile");

  autograd::RuntimeContext ctx;
  ctx.set_profiling(profile);
  autograd::RuntimeContextScope scope(&ctx);

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "=== Packed GEMM engine vs naive reference ===\n\n"
            << "hardware threads: " << hw << (smoke ? " (smoke mode)" : "")
            << "\n";

  // Run the tile sweep up front so every timed shape below uses the chosen
  // blocking (the lazy trigger would otherwise fold the sweep into the
  // first large case's warm-up).
  const GemmTiles tiles = AutotuneGemmTiles();
  const GemmTiles bf16_tiles = AutotuneGemmTiles(OpPrecision::kBf16);
  std::cout << "autotuned tiles: fp32 MC=" << tiles.mc << " KC=" << tiles.kc
            << " NC=" << tiles.nc << " | bf16 MC=" << bf16_tiles.mc
            << " KC=" << bf16_tiles.kc << " NC=" << bf16_tiles.nc << "\n\n";

  TablePrinter table("gemm kernels");
  table.SetHeader({"shape", "n", "k", "m", "layout", "ref GF/s", "packed GF/s",
                   "speedup", "bit-identical"});

  bool all_identical = true;
  double square512_speedup = 0.0;
  std::vector<CaseResult> results;
  for (const GemmCase& c : kCases) {
    const double flops = 2.0 * static_cast<double>(c.n) *
                         static_cast<double>(c.k) * static_cast<double>(c.m);
    int packed_reps = static_cast<int>(cli.GetInt("reps"));
    if (packed_reps <= 0) {
      packed_reps = std::max(3, static_cast<int>(4e8 / flops));
    }
    const int ref_reps = smoke ? 1 : std::max(1, packed_reps / 8);
    if (smoke) packed_reps = 1;
    const CaseResult r = RunCase(c, packed_reps, ref_reps, ctx);
    results.push_back(r);
    all_identical = all_identical && r.bit_identical;
    if (std::string(c.name) == "square_512") square512_speedup = r.speedup;
    const char* layout = c.trans_a ? "Tᵀ·B" : (c.trans_b ? "A·Bᵀ" : "A·B");
    table.AddRow({c.name, std::to_string(c.n), std::to_string(c.k),
                  std::to_string(c.m), layout, Fmt(r.ref_gflops),
                  Fmt(r.packed_gflops), Fmt(r.speedup),
                  r.bit_identical ? "yes" : "NO"});
  }
  table.Print(std::cout);

  // Low-precision tier: every variant against its serial oracle, speedups
  // against the fp32 packed engine on the same shape.
  std::cout << "\n";
  TablePrinter lp_table("low-precision tier (speedup vs fp32 packed)");
  lp_table.SetHeader(
      {"shape", "variant", "GF/s", "vs fp32", "bit-identical"});
  bool lp_identical = true;
  double serve_bf16_prepacked_speedup = 0.0;
  std::vector<PrecisionRow> lp_rows;
  for (const PrecisionCase& c : kPrecisionCases) {
    const double flops = 2.0 * static_cast<double>(c.n) *
                         static_cast<double>(c.k) * static_cast<double>(c.m);
    int packed_reps = static_cast<int>(cli.GetInt("reps"));
    if (packed_reps <= 0) {
      packed_reps = std::max(3, static_cast<int>(4e8 / flops));
    }
    if (smoke) packed_reps = 1;
    for (const PrecisionRow& r : RunPrecisionCase(c, packed_reps, ctx)) {
      lp_identical = lp_identical && r.bit_identical;
      if (std::string(r.shape) == "serve_linear_6x2048" &&
          std::string(r.variant) == "bf16-prepacked") {
        serve_bf16_prepacked_speedup = r.speedup_vs_fp32;
      }
      lp_table.AddRow({r.shape, r.variant, Fmt(r.gflops),
                       Fmt(r.speedup_vs_fp32),
                       r.bit_identical ? "yes" : "NO"});
      lp_rows.push_back(r);
    }
  }
  lp_table.Print(std::cout);

  bool ok = true;
  if (!all_identical) {
    std::cout << "\nFAIL: packed engine diverges bit-wise from the naive "
                 "reference\n";
    ok = false;
  }
  if (!lp_identical) {
    std::cout << "\nFAIL: low-precision kernels diverge bit-wise from their "
                 "serial oracles\n";
    ok = false;
  }
  const bool assert_speedup = !smoke;
  if (assert_speedup && square512_speedup < 2.0) {
    std::cout << "\nFAIL: square_512 speedup " << Fmt(square512_speedup)
              << "x < 2x over the naive reference\n";
    ok = false;
  }
  if (assert_speedup && serve_bf16_prepacked_speedup < 1.5) {
    std::cout << "\nFAIL: prepacked bf16 " << Fmt(serve_bf16_prepacked_speedup)
              << "x fp32 on serve_linear_6x2048, expected >= 1.5x "
                 "(memory-bound shape)\n";
    ok = false;
  }
  if (ok) {
    std::cout << "\nOK: all shapes bit-identical"
              << (assert_speedup
                      ? ", square_512 speedup " + Fmt(square512_speedup) +
                            "x, prepacked bf16 " +
                            Fmt(serve_bf16_prepacked_speedup) +
                            "x fp32 on the serving shape"
                      : " (throughput assertions skipped in smoke mode)")
              << "\n";
  }

  std::ofstream json("BENCH_gemm.json");
  json << "{\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"autotuned_tiles\": {\"mc\": " << tiles.mc
       << ", \"kc\": " << tiles.kc << ", \"nc\": " << tiles.nc << "},\n"
       << "  \"shapes\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const GemmCase& c = kCases[i];
    const CaseResult& r = results[i];
    json << "    {\"name\": \"" << c.name << "\", \"n\": " << c.n
         << ", \"k\": " << c.k << ", \"m\": " << c.m
         << ", \"trans_a\": " << (c.trans_a ? "true" : "false")
         << ", \"trans_b\": " << (c.trans_b ? "true" : "false")
         << ", \"precision\": \"fp32\""
         << ", \"ref_gflops\": " << r.ref_gflops
         << ", \"packed_gflops\": " << r.packed_gflops
         << ", \"speedup\": " << r.speedup << ", \"bit_identical\": "
         << (r.bit_identical ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"precision_shapes\": [\n";
  for (size_t i = 0; i < lp_rows.size(); ++i) {
    const PrecisionRow& r = lp_rows[i];
    json << "    {\"name\": \"" << r.shape << "\", \"variant\": \""
         << r.variant << "\", \"precision\": \"" << r.precision
         << "\", \"gflops\": " << r.gflops
         << ", \"speedup_vs_fp32\": " << r.speedup_vs_fp32
         << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
         << "}" << (i + 1 < lp_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"bf16_tiles\": {\"mc\": " << bf16_tiles.mc
       << ", \"kc\": " << bf16_tiles.kc << ", \"nc\": " << bf16_tiles.nc
       << "},\n"
       << "  \"square512_speedup\": " << square512_speedup << ",\n"
       << "  \"serve_bf16_prepacked_speedup\": "
       << serve_bf16_prepacked_speedup << ",\n"
       << "  \"speedup_asserted\": " << (assert_speedup ? "true" : "false")
       << ",\n"
       << "  \"ok\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote BENCH_gemm.json\n";

  if (profile) {
    std::cout << "\n";
    autograd::PrintOpProfileTable(ctx, std::cout);
  }
  return ok ? 0 : 1;
}
