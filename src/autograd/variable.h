// Variable: a Tensor plus reverse-mode autodiff bookkeeping.
//
// The autograd graph is implicit: every differentiable op returns a Variable
// whose `producer` records the typed op node (see op.h) holding the op's
// input edges, saved tensors, and backward rule. Backward(root) sweeps
// producers in dependency order and accumulates gradients into leaf
// Variables (parameters). There is no global tape, so graphs are freed as
// soon as the Variables referencing them go out of scope.
//
// MetaLoRA note: the whole point of the tape design is that gradients flow
// from the adapted backbone's loss back through the generated seed c into
// the mapping net — a DAG with cross-links that layer-local backward
// implementations get wrong easily.
#ifndef METALORA_AUTOGRAD_VARIABLE_H_
#define METALORA_AUTOGRAD_VARIABLE_H_

#include <memory>

// Grad-mode state (GradEnabled, NoGradGuard) lives with the runtime context;
// included here because Variable users historically found it in this header.
#include "autograd/runtime_context.h"
#include "tensor/tensor.h"

namespace metalora {
namespace autograd {

class Op;

struct VariableImpl {
  Tensor value;
  Tensor grad;  // undefined until first accumulation
  bool requires_grad = false;
  std::shared_ptr<Op> producer;  // null for leaves
};

/// A handle to a node in the autograd graph. Copies share state.
class Variable {
 public:
  /// An undefined variable (no value).
  Variable() = default;

  /// Wraps `value` as a leaf. Parameters pass requires_grad = true.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr && impl_->value.defined(); }

  const Tensor& value() const;
  Tensor& mutable_value();

  const Shape& shape() const { return value().shape(); }
  int64_t numel() const { return value().numel(); }
  int rank() const { return value().rank(); }
  int64_t dim(int i) const { return value().dim(i); }

  bool requires_grad() const { return impl_ && impl_->requires_grad; }

  /// Toggles gradient tracking for a leaf (used by freeze/unfreeze). Must not
  /// be called on op results.
  void set_requires_grad(bool requires_grad);

  /// The accumulated gradient; undefined Tensor if backward never reached
  /// this variable.
  const Tensor& grad() const;

  /// Mutable gradient access (optimizers, gradient clipping).
  Tensor& mutable_grad();

  /// Resets the gradient to undefined (cheaper than zeroing).
  void ZeroGrad();

  /// Adds `g` into the gradient buffer (allocating on first use).
  void AccumulateGrad(const Tensor& g);

  /// Leaf view of the same value without graph history.
  Variable Detach() const;

  const std::shared_ptr<Op>& producer() const;

  std::shared_ptr<VariableImpl> impl() const { return impl_; }

  /// Internal: constructs a non-leaf result. Used by MakeOpResult.
  static Variable FromOp(Tensor value, std::shared_ptr<Op> producer);

 private:
  std::shared_ptr<VariableImpl> impl_;
};

/// Monotonic process-wide version of all trainable parameter values.
/// Optimizers bump it once per Step(); derived-value caches (the MetaLoRA
/// conditioning cache) stamp entries with the version at insert time and
/// treat any entry with an older stamp as stale. Coarse by design: one
/// counter for every parameter means an optimizer step over any module
/// invalidates all caches, which is exactly the conservative behavior the
/// bit-identity contract needs.
uint64_t GlobalParameterVersion();

/// Bumps GlobalParameterVersion(). Called by optimizer Step(); callers that
/// mutate parameter values by hand (tests, manual loading) should bump too.
void BumpParameterVersion();

}  // namespace autograd
}  // namespace metalora

#endif  // METALORA_AUTOGRAD_VARIABLE_H_
