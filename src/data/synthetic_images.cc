#include "data/synthetic_images.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace metalora {
namespace data {

namespace {

constexpr int64_t kNumGeometries = 12;

const char* kClassNames[kNumGeometries] = {
    "disk",     "ring",      "hstripes", "vstripes",
    "checker",  "cross",     "diagonal", "dots",
    "gradient", "square",    "triangle", "waves",
};

struct DrawContext {
  float* pixels;  // single channel [H, W] scratch
  int64_t h;
  int64_t w;

  void Set(int64_t y, int64_t x, float v) {
    if (y >= 0 && y < h && x >= 0 && x < w) pixels[y * w + x] = v;
  }
};

// Each geometry renders an intensity pattern in [0,1] into `ctx` using
// randomized parameters.
void DrawGeometry(int64_t geometry, DrawContext& ctx, Rng& rng) {
  const int64_t h = ctx.h, w = ctx.w;
  const float cx = static_cast<float>(rng.Uniform(0.3, 0.7)) * w;
  const float cy = static_cast<float>(rng.Uniform(0.3, 0.7)) * h;
  const float scale = static_cast<float>(rng.Uniform(0.25, 0.42));
  const float phase = static_cast<float>(rng.Uniform(0.0, 2.0 * M_PI));

  auto fill = [&](auto&& f) {
    for (int64_t y = 0; y < h; ++y)
      for (int64_t x = 0; x < w; ++x)
        ctx.pixels[y * w + x] =
            std::clamp(f(static_cast<float>(y), static_cast<float>(x)), 0.0f,
                       1.0f);
  };

  switch (geometry) {
    case 0: {  // disk
      const float r = scale * std::min(h, w);
      fill([&](float y, float x) {
        const float d = std::hypot(y - cy, x - cx);
        return d < r ? 1.0f : 0.0f;
      });
      break;
    }
    case 1: {  // ring
      const float r = scale * std::min(h, w);
      const float thick = 0.35f * r;
      fill([&](float y, float x) {
        const float d = std::hypot(y - cy, x - cx);
        return std::fabs(d - r) < thick ? 1.0f : 0.0f;
      });
      break;
    }
    case 2: {  // horizontal stripes
      const float freq = 2.0f * static_cast<float>(M_PI) *
                         static_cast<float>(rng.Uniform(2.5, 4.5)) / h;
      fill([&](float y, float) {
        return 0.5f + 0.5f * std::sin(freq * y + phase);
      });
      break;
    }
    case 3: {  // vertical stripes
      const float freq = 2.0f * static_cast<float>(M_PI) *
                         static_cast<float>(rng.Uniform(2.5, 4.5)) / w;
      fill([&](float, float x) {
        return 0.5f + 0.5f * std::sin(freq * x + phase);
      });
      break;
    }
    case 4: {  // checkerboard
      const int64_t cell = 2 + static_cast<int64_t>(rng.UniformInt(3));
      const int64_t ox = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(cell)));
      const int64_t oy = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(cell)));
      fill([&](float y, float x) {
        const int64_t yi = (static_cast<int64_t>(y) + oy) / cell;
        const int64_t xi = (static_cast<int64_t>(x) + ox) / cell;
        return ((yi + xi) % 2 == 0) ? 1.0f : 0.0f;
      });
      break;
    }
    case 5: {  // cross
      const float arm = 0.14f * std::min(h, w) *
                        static_cast<float>(rng.Uniform(0.8, 1.3));
      fill([&](float y, float x) {
        return (std::fabs(y - cy) < arm || std::fabs(x - cx) < arm) ? 1.0f
                                                                    : 0.0f;
      });
      break;
    }
    case 6: {  // diagonal bands
      const float freq = 2.0f * static_cast<float>(M_PI) *
                         static_cast<float>(rng.Uniform(2.0, 3.5)) / (h + w);
      fill([&](float y, float x) {
        return 0.5f + 0.5f * std::sin(freq * (x + y) + phase);
      });
      break;
    }
    case 7: {  // dot lattice
      const int64_t pitch = 6 + static_cast<int64_t>(rng.UniformInt(4));
      const float r = 0.22f * pitch;
      fill([&](float y, float x) {
        const float my = std::fmod(y + phase, static_cast<float>(pitch)) -
                         pitch / 2.0f;
        const float mx = std::fmod(x + phase, static_cast<float>(pitch)) -
                         pitch / 2.0f;
        return std::hypot(my, mx) < r ? 1.0f : 0.0f;
      });
      break;
    }
    case 8: {  // radial gradient
      const float rmax = 0.7f * std::hypot(static_cast<float>(h),
                                           static_cast<float>(w));
      fill([&](float y, float x) {
        return 1.0f - std::hypot(y - cy, x - cx) / rmax;
      });
      break;
    }
    case 9: {  // filled square
      const float half = scale * std::min(h, w);
      fill([&](float y, float x) {
        return (std::fabs(y - cy) < half && std::fabs(x - cx) < half) ? 1.0f
                                                                      : 0.0f;
      });
      break;
    }
    case 10: {  // triangle (upper-left half plane through center, rotated)
      const float angle = phase;
      const float nx = std::cos(angle), ny = std::sin(angle);
      const float half = scale * std::min(h, w);
      fill([&](float y, float x) {
        const float dy = y - cy, dx = x - cx;
        const bool inside = std::fabs(dy) < half && std::fabs(dx) < half;
        return (inside && dx * nx + dy * ny > 0) ? 1.0f : 0.0f;
      });
      break;
    }
    case 11: {  // 2-D waves (product of sines)
      const float fy = 2.0f * static_cast<float>(M_PI) *
                       static_cast<float>(rng.Uniform(1.5, 3.0)) / h;
      const float fx = 2.0f * static_cast<float>(M_PI) *
                       static_cast<float>(rng.Uniform(1.5, 3.0)) / w;
      fill([&](float y, float x) {
        return 0.5f + 0.5f * std::sin(fy * y + phase) * std::sin(fx * x);
      });
      break;
    }
    default:
      ML_CHECK(false) << "unknown geometry " << geometry;
  }
}

}  // namespace

int64_t MaxSyntheticClasses() { return kNumGeometries; }

std::string SyntheticClassName(int64_t class_id) {
  ML_CHECK(class_id >= 0 && class_id < kNumGeometries);
  return kClassNames[class_id];
}

SyntheticImageGenerator::SyntheticImageGenerator(ImageSpec spec,
                                                 int64_t num_classes)
    : spec_(spec), num_classes_(num_classes) {
  ML_CHECK_GE(num_classes_, 2);
  ML_CHECK_LE(num_classes_, kNumGeometries);
  ML_CHECK_GE(spec_.channels, 1);
  ML_CHECK_GE(spec_.height, 8);
  ML_CHECK_GE(spec_.width, 8);
}

Tensor SyntheticImageGenerator::Sample(int64_t class_id, Rng& rng) const {
  ML_CHECK(class_id >= 0 && class_id < num_classes_)
      << "class id out of range: " << class_id;
  const int64_t c = spec_.channels, h = spec_.height, w = spec_.width;
  std::vector<float> intensity(static_cast<size_t>(h * w), 0.0f);
  DrawContext ctx{intensity.data(), h, w};
  DrawGeometry(class_id, ctx, rng);

  // Random but class-independent channel tint so color carries no label
  // information; foreground/background contrast carries the geometry.
  Tensor img{Shape{c, h, w}};
  float* pi = img.data();
  const float bg = static_cast<float>(rng.Uniform(0.05, 0.3));
  for (int64_t ch = 0; ch < c; ++ch) {
    const float tint = static_cast<float>(rng.Uniform(0.6, 1.0));
    float* plane = pi + ch * h * w;
    for (int64_t k = 0; k < h * w; ++k) {
      plane[k] = bg + (tint - bg) * intensity[static_cast<size_t>(k)];
    }
  }
  // Pixel noise.
  const float noise = static_cast<float>(rng.Uniform(0.01, 0.05));
  for (int64_t k = 0, n = img.numel(); k < n; ++k) {
    pi[k] = std::clamp(
        pi[k] + static_cast<float>(rng.Normal(0.0, noise)), 0.0f, 1.0f);
  }
  return img;
}

void SyntheticImageGenerator::SampleBatch(int64_t count, Rng& rng,
                                          Tensor* images,
                                          std::vector<int64_t>* labels) const {
  ML_CHECK(images != nullptr && labels != nullptr);
  const int64_t c = spec_.channels, h = spec_.height, w = spec_.width;
  *images = Tensor{Shape{count, c, h, w}};
  labels->resize(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const int64_t y =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_classes_)));
    (*labels)[static_cast<size_t>(i)] = y;
    Tensor sample = Sample(y, rng);
    std::copy(sample.data(), sample.data() + sample.numel(),
              images->data() + i * c * h * w);
  }
}

}  // namespace data
}  // namespace metalora
