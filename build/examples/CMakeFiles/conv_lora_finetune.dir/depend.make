# Empty dependencies file for conv_lora_finetune.
# This may be replaced when dependencies are built.
