# Empty dependencies file for autograd_gradcheck_test.
# This may be replaced when dependencies are built.
