file(REMOVE_RECURSE
  "libml_tn.a"
)
