// A bounded MPMC blocking queue — the handoff primitive of the serving
// pipeline (src/serve). Complements ThreadPool: the pool moves *work* that
// is free to run anywhere, this moves *data* between pipeline stages whose
// threads block on it, with the bound providing backpressure (a full queue
// blocks producers instead of growing without limit).
//
// Semantics:
//  - Push blocks while the queue is full; it fails (returns false, item
//    untouched) only once the queue is closed.
//  - TryPush never blocks; it fails on a full or closed queue.
//  - Pop blocks until an item arrives or the queue is closed AND drained:
//    items enqueued before Close() are always delivered, which is what lets
//    a shutdown complete every in-flight request instead of dropping it.
//  - Close() is idempotent and wakes every waiter.
//
// All waiting uses one mutex + two condition variables (not-full /
// not-empty); the high-water mark is tracked under the same mutex so stats
// snapshots need no extra synchronization.
#ifndef METALORA_COMMON_BOUNDED_QUEUE_H_
#define METALORA_COMMON_BOUNDED_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "common/check.h"

namespace metalora {

enum class QueuePopStatus {
  kItem,     // *out holds the popped item
  kTimeout,  // deadline expired with the queue empty (and not closed)
  kClosed,   // queue closed and fully drained; no item
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int64_t capacity) : capacity_(capacity) {
    ML_CHECK_GT(capacity, 0);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. True once the item is enqueued; false if the queue
  /// was closed first (the item is left untouched for the caller).
  bool Push(T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || static_cast<int64_t>(items_.size()) < capacity_;
    });
    if (closed_) return false;
    PushLocked(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking Push: false (item untouched) when full or closed.
  bool TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || static_cast<int64_t>(items_.size()) >= capacity_) {
        return false;
      }
      PushLocked(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (kItem) or the queue is closed and
  /// drained (kClosed). Never returns kTimeout.
  QueuePopStatus Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked(out);
  }

  /// Pop with a deadline: kTimeout when `timeout_us` elapses with nothing
  /// to deliver (the micro-batcher's flush tick).
  QueuePopStatus PopFor(T* out, int64_t timeout_us) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = not_empty_.wait_for(
        lock, std::chrono::microseconds(timeout_us),
        [this] { return closed_ || !items_.empty(); });
    if (!ready) return QueuePopStatus::kTimeout;
    return PopLocked(out);
  }

  /// Closes the queue: subsequent pushes fail, pops drain what remains.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(items_.size());
  }

  /// Deepest the queue has ever been — the backpressure gauge in ServeStats.
  int64_t peak_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_size_;
  }

 private:
  void PushLocked(T&& item) {
    items_.push_back(std::move(item));
    peak_size_ = std::max(peak_size_, static_cast<int64_t>(items_.size()));
  }

  QueuePopStatus PopLocked(T* out) {
    if (items_.empty()) return QueuePopStatus::kClosed;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return QueuePopStatus::kItem;
  }

  const int64_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  int64_t peak_size_ = 0;
};

}  // namespace metalora

#endif  // METALORA_COMMON_BOUNDED_QUEUE_H_
