#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace metalora {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string HumanCount(double value) {
  const char* suffix = "";
  double v = value;
  if (std::fabs(v) >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  return StrFormat("%.2f%s", v, suffix);
}

}  // namespace metalora
