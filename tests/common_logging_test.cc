#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace metalora {
namespace {

// Captures stderr for the duration of a scope.
class StderrCapture {
 public:
  StderrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~StderrCapture() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::stringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, DefaultLevelIsInfo) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, MessageContainsLevelFileAndText) {
  StderrCapture cap;
  ML_LOG(Warning) << "disk almost full: " << 93 << "%";
  const std::string out = cap.str();
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("common_logging_test.cc"), std::string::npos);
  EXPECT_NE(out.find("disk almost full: 93%"), std::string::npos);
}

TEST_F(LoggingTest, BelowThresholdIsDropped) {
  SetLogLevel(LogLevel::kError);
  StderrCapture cap;
  ML_LOG(Info) << "should not appear";
  ML_LOG(Warning) << "also hidden";
  EXPECT_TRUE(cap.str().empty());
}

TEST_F(LoggingTest, AtOrAboveThresholdIsEmitted) {
  SetLogLevel(LogLevel::kWarning);
  StderrCapture cap;
  ML_LOG(Warning) << "visible";
  ML_LOG(Error) << "very visible";
  const std::string out = cap.str();
  EXPECT_NE(out.find("visible"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, DebugHiddenByDefault) {
  StderrCapture cap;
  ML_LOG(Debug) << "debug detail";
  EXPECT_TRUE(cap.str().empty());
  SetLogLevel(LogLevel::kDebug);
  ML_LOG(Debug) << "debug detail";
  EXPECT_NE(cap.str().find("DEBUG"), std::string::npos);
}

TEST_F(LoggingTest, EachMessageEndsWithNewline) {
  StderrCapture cap;
  ML_LOG(Info) << "one";
  ML_LOG(Info) << "two";
  const std::string out = cap.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

}  // namespace
}  // namespace metalora
