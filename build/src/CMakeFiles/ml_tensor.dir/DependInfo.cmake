
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/conv_ops.cc" "src/CMakeFiles/ml_tensor.dir/tensor/conv_ops.cc.o" "gcc" "src/CMakeFiles/ml_tensor.dir/tensor/conv_ops.cc.o.d"
  "/root/repo/src/tensor/linalg.cc" "src/CMakeFiles/ml_tensor.dir/tensor/linalg.cc.o" "gcc" "src/CMakeFiles/ml_tensor.dir/tensor/linalg.cc.o.d"
  "/root/repo/src/tensor/matmul.cc" "src/CMakeFiles/ml_tensor.dir/tensor/matmul.cc.o" "gcc" "src/CMakeFiles/ml_tensor.dir/tensor/matmul.cc.o.d"
  "/root/repo/src/tensor/random_init.cc" "src/CMakeFiles/ml_tensor.dir/tensor/random_init.cc.o" "gcc" "src/CMakeFiles/ml_tensor.dir/tensor/random_init.cc.o.d"
  "/root/repo/src/tensor/serialize.cc" "src/CMakeFiles/ml_tensor.dir/tensor/serialize.cc.o" "gcc" "src/CMakeFiles/ml_tensor.dir/tensor/serialize.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/CMakeFiles/ml_tensor.dir/tensor/shape.cc.o" "gcc" "src/CMakeFiles/ml_tensor.dir/tensor/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/ml_tensor.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/ml_tensor.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/tensor_ops.cc" "src/CMakeFiles/ml_tensor.dir/tensor/tensor_ops.cc.o" "gcc" "src/CMakeFiles/ml_tensor.dir/tensor/tensor_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
