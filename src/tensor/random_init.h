// Random tensor initializers. All take an explicit Rng for determinism.
#ifndef METALORA_TENSOR_RANDOM_INIT_H_
#define METALORA_TENSOR_RANDOM_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace metalora {

/// Fills with U(lo, hi).
void FillUniform(Tensor& t, Rng& rng, float lo, float hi);

/// Fills with N(mean, stddev).
void FillNormal(Tensor& t, Rng& rng, float mean, float stddev);

/// Returns a fresh tensor with U(lo, hi) entries.
Tensor RandomUniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

/// Returns a fresh tensor with N(mean, stddev) entries.
Tensor RandomNormal(Shape shape, Rng& rng, float mean = 0.0f,
                    float stddev = 1.0f);

/// Kaiming/He normal init for ReLU networks: N(0, sqrt(2 / fan_in)).
void KaimingNormal(Tensor& t, Rng& rng, int64_t fan_in);

/// Xavier/Glorot uniform init: U(±sqrt(6 / (fan_in + fan_out))).
void XavierUniform(Tensor& t, Rng& rng, int64_t fan_in, int64_t fan_out);

}  // namespace metalora

#endif  // METALORA_TENSOR_RANDOM_INIT_H_
