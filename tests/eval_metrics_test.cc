#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace metalora {
namespace eval {
namespace {

TEST(MetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 3}, {1, 2, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({0}, {1}), 0.0);
  EXPECT_DEATH(Accuracy({}, {}), "");
  EXPECT_DEATH(Accuracy({1}, {1, 2}), "");
}

TEST(MetricsTest, LogitsAccuracy) {
  Tensor logits = Tensor::FromVector(Shape{2, 3}, {0, 5, 0, 9, 0, 0});
  EXPECT_DOUBLE_EQ(LogitsAccuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(LogitsAccuracy(logits, {1, 2}), 0.5);
}

TEST(MetricsTest, ConfusionMatrixRowNormalized) {
  // True 0 predicted {0, 0, 1}; true 1 predicted {1}.
  Tensor cm = ConfusionMatrix({0, 0, 1, 1}, {0, 0, 0, 1}, 2);
  EXPECT_NEAR(cm.at({0, 0}), 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(cm.at({0, 1}), 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(cm.at({1, 0}), 0.0, 1e-6);
  EXPECT_NEAR(cm.at({1, 1}), 1.0, 1e-6);
}

TEST(MetricsTest, ConfusionMatrixEmptyClassRowIsZero) {
  Tensor cm = ConfusionMatrix({0}, {0}, 3);
  EXPECT_EQ(cm.at({2, 0}), 0.0f);
  EXPECT_EQ(cm.at({2, 2}), 0.0f);
}

TEST(MetricsTest, PerClassAccuracy) {
  auto acc = PerClassAccuracy({0, 1, 1, 2}, {0, 1, 2, 2}, 3);
  EXPECT_DOUBLE_EQ(acc[0], 1.0);
  EXPECT_DOUBLE_EQ(acc[1], 1.0);
  EXPECT_DOUBLE_EQ(acc[2], 0.5);
}

TEST(MetricsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 6.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({3.0, 3.0, 3.0}), 0.0);
  EXPECT_DEATH(Mean({}), "");
}

}  // namespace
}  // namespace eval
}  // namespace metalora
