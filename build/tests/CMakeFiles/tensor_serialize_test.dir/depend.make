# Empty dependencies file for tensor_serialize_test.
# This may be replaced when dependencies are built.
