// Parallel op dispatch: wall-clock win and determinism on the two-branch
// adapter forward.
//
// LoraLinear at in = out = 1024, rank = 512 makes the frozen path and the
// adapter path cost the same FLOPs (64x1024x1024 vs 64x1024x512 twice), so
// a two-way dispatch has ~2x theoretical headroom. The bench times the
// grad-recording forward with the dispatcher on and off, reports the
// speedup, and always verifies the dispatcher's core contract: outputs and
// gradients bit-identical to serial execution.
//
// The speedup assertion only arms on machines with >= 4 hardware threads —
// below that the dispatcher intentionally degrades toward serial and there
// is nothing to measure.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "autograd/graph.h"
#include "autograd/ops.h"
#include "autograd/parallel.h"
#include "autograd/runtime_context.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/lora_linear.h"
#include "nn/linear.h"
#include "tensor/random_init.h"

using namespace metalora;  // NOLINT

namespace {

// The bench runs every forward/backward under a step arena (the trainer's
// configuration); each iteration is one generation.
autograd::WorkspaceArena* g_step_arena = nullptr;

struct GradSnapshot {
  Tensor value;
  Tensor grad_a;
  Tensor grad_b;
};

GradSnapshot ForwardBackward(core::LoraLinear& lora,
                             const autograd::Variable& x) {
  if (g_step_arena != nullptr) g_step_arena->NextGeneration();
  autograd::Variable y = lora.Forward(x);
  autograd::Variable loss = autograd::SumAll(autograd::Mul(y, y));
  if (!autograd::Backward(loss).ok()) {
    std::cerr << "backward failed\n";
    std::exit(1);
  }
  GradSnapshot s;
  s.value = y.value().Clone();
  for (auto& np : lora.NamedParameters()) {
    if (np.name == "lora_a") s.grad_a = np.variable->grad().Clone();
    if (np.name == "lora_b") s.grad_b = np.variable->grad().Clone();
  }
  lora.ZeroGrad();
  return s;
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (a.flat(i) != b.flat(i)) return false;
  }
  return true;
}

double TimeForward(core::LoraLinear& lora, const autograd::Variable& x,
                   int iters) {
  float sink = 0.0f;
  auto step = [&] {
    if (g_step_arena != nullptr) g_step_arena->NextGeneration();
    sink += lora.Forward(x).value().flat(0);
  };
  for (int i = 0; i < 3; ++i) step();
  Timer t;
  for (int i = 0; i < iters; ++i) step();
  const double us = t.Micros() / iters;
  if (!std::isfinite(sink)) std::cerr << "non-finite checksum\n";
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli;
  cli.AddBool("profile", false,
              "enable RuntimeContext op profiling and dump the per-op "
              "table at exit");
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << cli.Usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.Usage(argv[0]);
    return 0;
  }
  const bool profile = cli.GetBool("profile");
  // Branch contexts inherit the profiling bit through ParallelScope and
  // fold their counters back at the join, so the table covers both the
  // serial and the dispatched forwards. The bench context mirrors the
  // trainer: a generation-tagged arena serves the grad-recording graph,
  // bumped once per iteration. Dispatched branches run on their own
  // contexts (heap) and merge counters back at the join.
  autograd::WorkspaceArena step_arena;
  autograd::RuntimeContext rctx;
  rctx.set_profiling(profile);
  rctx.set_arena(&step_arena);
  rctx.set_arena_serves_grad(true);
  autograd::RuntimeContextScope rctx_scope(&rctx);
  g_step_arena = &step_arena;

  std::cout << "=== Parallel dispatch: two-branch adapter forward ===\n\n";
  const unsigned hw = std::thread::hardware_concurrency();
  // The dispatcher needs real workers to overlap branches; on small
  // machines borrow an explicit pool so the bench still reports numbers.
  const int workers = hw >= 2 ? static_cast<int>(hw) - 1 : 2;
  ThreadPool pool(workers);
  autograd::SetParallelDispatchPool(&pool);

  const int64_t batch = 64, dim = 1024, rank = 512;
  core::AdapterOptions opts;
  opts.rank = rank;
  opts.alpha = static_cast<float>(rank);
  opts.seed = 3;
  Rng rng(5);
  core::LoraLinear lora(
      std::make_unique<nn::Linear>(dim, dim, /*bias=*/true, rng), opts);
  for (auto& np : lora.NamedParameters()) {
    if (np.name == "lora_b") {
      FillNormal(np.variable->mutable_value(), rng, 0.0f, 0.05f);
    }
  }
  autograd::Variable x(RandomNormal(Shape{batch, dim}, rng), false);

  // Contract check first: identical numbers with dispatch on and off.
  autograd::SetParallelDispatchEnabled(true);
  GradSnapshot par = ForwardBackward(lora, x);
  autograd::SetParallelDispatchEnabled(false);
  GradSnapshot ser = ForwardBackward(lora, x);
  const bool grads_identical = BitIdentical(par.value, ser.value) &&
                               BitIdentical(par.grad_a, ser.grad_a) &&
                               BitIdentical(par.grad_b, ser.grad_b);

  const int iters = 30;
  autograd::SetParallelDispatchEnabled(false);
  const double serial_us = TimeForward(lora, x, iters);
  autograd::SetParallelDispatchEnabled(true);
  const double parallel_us = TimeForward(lora, x, iters);
  const double speedup = serial_us / parallel_us;

  TablePrinter table("parallel dispatch");
  table.SetHeader({"mode", "us/forward"});
  table.AddRow({"serial", std::to_string(serial_us)});
  table.AddRow({"parallel", std::to_string(parallel_us)});
  table.Print(std::cout);
  std::cout << "\nhardware threads: " << hw << ", pool workers: " << workers
            << ", speedup: " << speedup << "x\n";

  bool ok = true;
  if (!grads_identical) {
    std::cout << "FAIL: parallel dispatch changed outputs or gradients\n";
    ok = false;
  }
  const bool assert_speedup = hw >= 4;
  if (assert_speedup && speedup < 1.3) {
    std::cout << "FAIL: speedup " << speedup
              << "x < 1.3x on a machine with " << hw
              << " hardware threads\n";
    ok = false;
  }
  if (ok) {
    std::cout << "OK: gradients bit-identical"
              << (assert_speedup
                      ? " and speedup target met\n"
                      : " (speedup target not armed: < 4 hardware threads)\n");
  }

  std::ofstream json("BENCH_parallel_dispatch.json");
  json << "{\n"
       << "  \"model\": {\"batch\": " << batch << ", \"dim\": " << dim
       << ", \"rank\": " << rank << ", \"iters\": " << iters << "},\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"pool_workers\": " << workers << ",\n"
       << "  \"serial_us_per_forward\": " << serial_us << ",\n"
       << "  \"parallel_us_per_forward\": " << parallel_us << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"grads_bit_identical\": " << (grads_identical ? "true" : "false")
       << ",\n"
       << "  \"speedup_asserted\": " << (assert_speedup ? "true" : "false")
       << ",\n"
       << "  \"arena\": {\"hit_rate\": " << rctx.ArenaHitRate()
       << ", \"pins\": " << rctx.pin_count()
       << ", \"pin_bytes\": " << rctx.pin_bytes()
       << ", \"generation\": " << step_arena.generation()
       << ", \"peak_bytes\": " << step_arena.peak_bytes() << "},\n"
       << "  \"ok\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote BENCH_parallel_dispatch.json\n";
  if (profile) {
    std::cout << "\n";
    autograd::PrintOpProfileTable(rctx, std::cout);
  }
  autograd::SetParallelDispatchPool(nullptr);
  return ok ? 0 : 1;
}
