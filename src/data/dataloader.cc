#include "data/dataloader.h"

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace data {

DataLoader::DataLoader(const MultiTaskDataset& dataset, int64_t batch_size,
                       bool shuffle, uint64_t seed)
    : dataset_(&dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  ML_CHECK_GT(batch_size_, 0);
  ML_CHECK_GT(dataset.size(), 0) << "DataLoader over empty dataset";
  order_.resize(static_cast<size_t>(dataset.size()));
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = static_cast<int64_t>(i);
  if (shuffle_) rng_.Shuffle(order_);
}

int64_t DataLoader::num_batches() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

Batch DataLoader::GetBatch(int64_t b) const {
  ML_CHECK(b >= 0 && b < num_batches()) << "batch index out of range";
  const int64_t lo = b * batch_size_;
  const int64_t hi = std::min<int64_t>(dataset_->size(), lo + batch_size_);
  std::vector<int64_t> rows(order_.begin() + lo, order_.begin() + hi);
  Batch batch;
  batch.images = GatherRows(dataset_->images, rows);
  batch.labels.reserve(rows.size());
  batch.task_ids.reserve(rows.size());
  for (int64_t r : rows) {
    batch.labels.push_back(dataset_->labels[static_cast<size_t>(r)]);
    batch.task_ids.push_back(dataset_->task_ids[static_cast<size_t>(r)]);
  }
  return batch;
}

void DataLoader::Reshuffle() {
  if (shuffle_) rng_.Shuffle(order_);
}

}  // namespace data
}  // namespace metalora
