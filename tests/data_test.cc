#include <gtest/gtest.h>

#include <set>

#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "data/task_suite.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace data {
namespace {

ImageSpec Spec() { return ImageSpec{3, 16, 16}; }

TEST(SyntheticImagesTest, ClassCountBounds) {
  EXPECT_GE(MaxSyntheticClasses(), 8);
  EXPECT_DEATH(SyntheticImageGenerator(Spec(), 1), "");
  EXPECT_DEATH(SyntheticImageGenerator(Spec(), MaxSyntheticClasses() + 1), "");
}

TEST(SyntheticImagesTest, SampleShapeAndRange) {
  SyntheticImageGenerator gen(Spec(), 6);
  Rng rng(1);
  for (int64_t c = 0; c < 6; ++c) {
    Tensor img = gen.Sample(c, rng);
    EXPECT_EQ(img.shape(), Shape({3, 16, 16}));
    EXPECT_GE(MinAll(img), 0.0f);
    EXPECT_LE(MaxAll(img), 1.0f);
  }
}

TEST(SyntheticImagesTest, DeterministicGivenRngState) {
  SyntheticImageGenerator gen(Spec(), 4);
  Rng a(42), b(42);
  Tensor ia = gen.Sample(2, a);
  Tensor ib = gen.Sample(2, b);
  EXPECT_TRUE(AllClose(ia, ib, 0.0f, 0.0f));
}

TEST(SyntheticImagesTest, SamplesOfSameClassVary) {
  SyntheticImageGenerator gen(Spec(), 4);
  Rng rng(1);
  Tensor a = gen.Sample(0, rng);
  Tensor b = gen.Sample(0, rng);
  EXPECT_FALSE(AllClose(a, b));  // randomized placement/noise
}

TEST(SyntheticImagesTest, ClassesAreVisuallyDistinct) {
  // Mean absolute difference between class prototypes should be significant.
  SyntheticImageGenerator gen(Spec(), 6);
  Rng rng(3);
  Tensor disk = gen.Sample(0, rng);
  Tensor stripes = gen.Sample(2, rng);
  EXPECT_GT(MaxAbsDiff(disk, stripes), 0.3f);
}

TEST(SyntheticImagesTest, ClassNames) {
  EXPECT_EQ(SyntheticClassName(0), "disk");
  EXPECT_DEATH(SyntheticClassName(MaxSyntheticClasses()), "");
}

TEST(SyntheticImagesTest, BatchSampling) {
  SyntheticImageGenerator gen(Spec(), 5);
  Rng rng(4);
  Tensor images;
  std::vector<int64_t> labels;
  gen.SampleBatch(40, rng, &images, &labels);
  EXPECT_EQ(images.shape(), Shape({40, 3, 16, 16}));
  ASSERT_EQ(labels.size(), 40u);
  std::set<int64_t> seen(labels.begin(), labels.end());
  EXPECT_GE(seen.size(), 3u);  // uniform draw hits several classes
  for (int64_t y : labels) EXPECT_LT(y, 5);
}

TEST(TaskSuiteTest, TaskZeroIsIdentity) {
  TaskSuite suite(4, 7);
  const TaskTransform& t0 = suite.task(0);
  EXPECT_FALSE(t0.invert);
  EXPECT_EQ(t0.rot90, 0);
  EXPECT_FALSE(t0.flip_h);
  EXPECT_EQ(t0.contrast, 1.0f);
  EXPECT_EQ(t0.brightness, 0.0f);
  // Identity transform leaves images (nearly) unchanged.
  SyntheticImageGenerator gen(Spec(), 4);
  Rng rng(1);
  Tensor img = gen.Sample(1, rng);
  Tensor out = ApplyTransform(img, t0, rng);
  EXPECT_TRUE(AllClose(out, img, 1e-5f, 1e-5f));
}

TEST(TaskSuiteTest, LaterTasksShiftTheDistribution) {
  TaskSuite suite(4, 7);
  SyntheticImageGenerator gen(Spec(), 4);
  Rng rng(2);
  Tensor img = gen.Sample(0, rng);
  for (int t = 1; t < 4; ++t) {
    Tensor out = ApplyTransform(img, suite.task(t), rng);
    EXPECT_GT(MaxAbsDiff(out, img), 0.05f) << "task " << t;
  }
}

TEST(TaskSuiteTest, TasksConflict) {
  // Odd tasks invert, even tasks don't (the conflicting-shift construction).
  TaskSuite suite(5, 9);
  EXPECT_TRUE(suite.task(1).invert);
  EXPECT_FALSE(suite.task(2).invert);
  EXPECT_TRUE(suite.task(3).invert);
}

TEST(TaskSuiteTest, DeterministicFromSeed) {
  TaskSuite a(4, 11), b(4, 11);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(a.task(t).ToString(), b.task(t).ToString());
  }
  TaskSuite c(4, 12);
  EXPECT_NE(a.task(2).ToString(), c.task(2).ToString());
}

TEST(TaskSuiteTest, InvertFlipsIntensity) {
  TaskTransform t;
  t.invert = true;
  Tensor img = Tensor::Full(Shape{3, 4, 4}, 0.2f);
  Rng rng(1);
  Tensor out = ApplyTransform(img, t, rng);
  EXPECT_NEAR(out.flat(0), 0.8f, 1e-5);
}

TEST(TaskSuiteTest, OutputStaysInRange) {
  TaskSuite suite(6, 13);
  SyntheticImageGenerator gen(Spec(), 4);
  Rng rng(3);
  for (int t = 0; t < 6; ++t) {
    Tensor out = ApplyTransform(gen.Sample(t % 4, rng), suite.task(t), rng);
    EXPECT_GE(MinAll(out), 0.0f);
    EXPECT_LE(MaxAll(out), 1.0f);
  }
}

TEST(DatasetTest, MultiTaskSizesAndIds) {
  SyntheticImageGenerator gen(Spec(), 4);
  TaskSuite suite(3, 5);
  MultiTaskDataset ds = MakeMultiTaskDataset(gen, suite, 10, 17);
  EXPECT_EQ(ds.size(), 30);
  EXPECT_EQ(ds.images.shape(), Shape({30, 3, 16, 16}));
  int counts[3] = {0, 0, 0};
  for (int64_t t : ds.task_ids) ++counts[t];
  EXPECT_EQ(counts[0], 10);
  EXPECT_EQ(counts[1], 10);
  EXPECT_EQ(counts[2], 10);
}

TEST(DatasetTest, BaseDatasetIsSingleTask) {
  SyntheticImageGenerator gen(Spec(), 4);
  MultiTaskDataset ds = MakeBaseDataset(gen, 20, 3);
  EXPECT_EQ(ds.size(), 20);
  for (int64_t t : ds.task_ids) EXPECT_EQ(t, 0);
}

TEST(DatasetTest, SplitPreservesTotalAndContent) {
  SyntheticImageGenerator gen(Spec(), 4);
  TaskSuite suite(2, 5);
  MultiTaskDataset all = MakeMultiTaskDataset(gen, suite, 20, 19);
  MultiTaskDataset train, test;
  SplitDataset(all, 0.25, 7, &train, &test);
  EXPECT_EQ(test.size(), 10);
  EXPECT_EQ(train.size(), 30);
  EXPECT_EQ(train.size() + test.size(), all.size());
}

TEST(DatasetTest, FilterAndExcludeTask) {
  SyntheticImageGenerator gen(Spec(), 4);
  TaskSuite suite(3, 5);
  MultiTaskDataset all = MakeMultiTaskDataset(gen, suite, 8, 23);
  MultiTaskDataset only1 = FilterTask(all, 1);
  EXPECT_EQ(only1.size(), 8);
  for (int64_t t : only1.task_ids) EXPECT_EQ(t, 1);
  MultiTaskDataset without1 = ExcludeTask(all, 1);
  EXPECT_EQ(without1.size(), 16);
  for (int64_t t : without1.task_ids) EXPECT_NE(t, 1);
}

TEST(DataLoaderTest, CoversAllSamplesOnce) {
  SyntheticImageGenerator gen(Spec(), 4);
  MultiTaskDataset ds = MakeBaseDataset(gen, 25, 31);
  DataLoader loader(ds, 8, /*shuffle=*/true, 3);
  EXPECT_EQ(loader.num_batches(), 4);
  int64_t total = 0;
  std::multiset<int64_t> labels_seen;
  for (int64_t b = 0; b < loader.num_batches(); ++b) {
    Batch batch = loader.GetBatch(b);
    total += batch.size();
    for (int64_t y : batch.labels) labels_seen.insert(y);
  }
  EXPECT_EQ(total, 25);
  EXPECT_EQ(labels_seen.size(), ds.labels.size());
}

TEST(DataLoaderTest, LastBatchIsSmaller) {
  SyntheticImageGenerator gen(Spec(), 4);
  MultiTaskDataset ds = MakeBaseDataset(gen, 10, 37);
  DataLoader loader(ds, 4, false, 0);
  EXPECT_EQ(loader.GetBatch(2).size(), 2);
}

TEST(DataLoaderTest, NoShuffleKeepsOrder) {
  SyntheticImageGenerator gen(Spec(), 4);
  MultiTaskDataset ds = MakeBaseDataset(gen, 6, 41);
  DataLoader loader(ds, 3, false, 0);
  Batch b0 = loader.GetBatch(0);
  EXPECT_EQ(b0.labels[0], ds.labels[0]);
  EXPECT_EQ(b0.labels[2], ds.labels[2]);
}

TEST(DataLoaderTest, ReshuffleChangesOrder) {
  SyntheticImageGenerator gen(Spec(), 6);
  MultiTaskDataset ds = MakeBaseDataset(gen, 64, 43);
  DataLoader loader(ds, 64, true, 5);
  Batch before = loader.GetBatch(0);
  loader.Reshuffle();
  Batch after = loader.GetBatch(0);
  EXPECT_NE(before.labels, after.labels);
}

TEST(DataLoaderTest, EmptyDatasetDies) {
  MultiTaskDataset empty;
  EXPECT_DEATH(DataLoader(empty, 4, false, 0), "empty");
}

TEST(DataLoaderTest, ShuffleOrderDependsOnlyOnSeed) {
  // The replica determinism contract leans on this: sample order is a
  // function of (seed, Reshuffle count) alone, never of who reads the
  // loader or in what slices.
  SyntheticImageGenerator gen(Spec(), 4);
  MultiTaskDataset ds = MakeBaseDataset(gen, 26, 51);
  DataLoader whole(ds, 8, true, 9);
  DataLoader sliced(ds, 8, true, 9);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int64_t b = 0; b < whole.num_batches(); ++b) {
      Batch full = whole.GetBatch(b);
      // Read the same batch as shards, in reverse shard order.
      std::vector<int64_t> labels, task_ids;
      labels.resize(static_cast<size_t>(full.size()));
      task_ids.resize(static_cast<size_t>(full.size()));
      for (int s = 3; s >= 0; --s) {
        int64_t lo = 0, hi = 0;
        ShardRange(full.size(), 4, s, &lo, &hi);
        Batch shard = sliced.GetBatchSlice(b, lo, hi);
        for (int64_t i = lo; i < hi; ++i) {
          labels[static_cast<size_t>(i)] =
              shard.labels[static_cast<size_t>(i - lo)];
          task_ids[static_cast<size_t>(i)] =
              shard.task_ids[static_cast<size_t>(i - lo)];
        }
      }
      EXPECT_EQ(labels, full.labels) << "epoch " << epoch << " batch " << b;
      EXPECT_EQ(task_ids, full.task_ids);
    }
    whole.Reshuffle();
    sliced.Reshuffle();
  }
}

TEST(DataLoaderTest, BatchSliceRowsMatchFullBatchBitwise) {
  SyntheticImageGenerator gen(Spec(), 4);
  MultiTaskDataset ds = MakeBaseDataset(gen, 10, 53);
  DataLoader loader(ds, 8, true, 3);
  Batch full = loader.GetBatch(0);
  const int64_t row_floats = full.images.numel() / full.size();
  for (int s = 0; s < 3; ++s) {
    int64_t lo = 0, hi = 0;
    ShardRange(full.size(), 3, s, &lo, &hi);
    Batch shard = loader.GetBatchSlice(0, lo, hi);
    ASSERT_EQ(shard.size(), hi - lo);
    EXPECT_TRUE(std::equal(shard.images.data(),
                           shard.images.data() + shard.images.numel(),
                           full.images.data() + lo * row_floats));
  }
  // The empty range is a valid (absent) shard.
  EXPECT_EQ(loader.GetBatchSlice(0, 4, 4).size(), 0);
}

TEST(ShardRangeTest, PartitionsExactlyWithLargerShardsFirst) {
  for (int64_t n : {0, 1, 2, 7, 8, 9, 31, 64}) {
    for (int shards : {1, 2, 3, 8, 16}) {
      int64_t expected_lo = 0;
      int64_t min_size = n, max_size = 0;
      for (int s = 0; s < shards; ++s) {
        int64_t lo = 0, hi = 0;
        ShardRange(n, shards, s, &lo, &hi);
        EXPECT_EQ(lo, expected_lo) << "gap at n=" << n << " s=" << s;
        EXPECT_GE(hi, lo);
        min_size = std::min(min_size, hi - lo);
        max_size = std::max(max_size, hi - lo);
        if (s > 0) {
          int64_t prev_lo = 0, prev_hi = 0;
          ShardRange(n, shards, s - 1, &prev_lo, &prev_hi);
          EXPECT_LE(hi - lo, prev_hi - prev_lo) << "larger shards first";
        }
        expected_lo = hi;
      }
      EXPECT_EQ(expected_lo, n) << "partition must cover [0, n) exactly";
      if (n >= shards) {
        EXPECT_LE(max_size - min_size, 1);
      }
    }
  }
}

}  // namespace
}  // namespace data
}  // namespace metalora
