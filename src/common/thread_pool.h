// A small fixed-size thread pool plus a ParallelFor helper.
//
// Kernels call ParallelFor with a grain size; on single-core machines (or
// when the pool has one thread) the loop runs inline with zero overhead.
// The global pool defaults to hardware_concurrency() threads and can be
// resized once at program start.
#ifndef METALORA_COMMON_THREAD_POOL_H_
#define METALORA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace metalora {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means run everything
  /// inline on the calling thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(begin..end) partitioned into contiguous chunks across the pool,
  /// blocking until all chunks finish. `grain` is the minimum chunk size;
  /// small ranges run inline.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// Process-wide pool used by tensor kernels. First call creates it with
/// hardware_concurrency() - 1 workers (0 on single-core machines).
ThreadPool& GlobalThreadPool();

/// Convenience wrapper over GlobalThreadPool().ParallelFor.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace metalora

#endif  // METALORA_COMMON_THREAD_POOL_H_
