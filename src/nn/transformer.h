// A small Vision-Transformer-style encoder (paper §III.E extension:
// "broader applications in transformer architectures").
//
// Patch embedding (conv) + learned positional embedding → L pre-norm
// transformer blocks (MHSA + GELU MLP, both residual) → LayerNorm → mean
// over tokens. Linear layers are resolved by name so adapters inject into
// attention projections and MLPs alike.
#ifndef METALORA_NN_TRANSFORMER_H_
#define METALORA_NN_TRANSFORMER_H_

#include "common/rng.h"
#include "nn/attention.h"
#include "nn/module.h"

namespace metalora {
namespace nn {

struct TransformerConfig {
  int64_t in_channels = 3;
  int64_t image_size = 16;
  int64_t patch_size = 4;
  int64_t dim = 32;        // token width D
  int num_heads = 4;
  int64_t mlp_dim = 64;
  int num_blocks = 2;
  int64_t num_classes = 10;
  uint64_t seed = 1;
};

class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t dim, int num_heads, int64_t mlp_dim, Rng& rng);

  /// x is [N, S, D].
  Variable Forward(const Variable& x) override;
};

class VisionTransformer : public Module {
 public:
  explicit VisionTransformer(const TransformerConfig& config);

  /// Logits [N, num_classes].
  Variable Forward(const Variable& x) override;

  /// Pooled features [N, dim].
  Variable ForwardFeatures(const Variable& x);

  int64_t feature_dim() const { return config_.dim; }
  int64_t num_tokens() const { return num_tokens_; }
  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  int64_t num_tokens_;
  Variable pos_embed_;  // [S * D], broadcast over the batch
};

}  // namespace nn
}  // namespace metalora

#endif  // METALORA_NN_TRANSFORMER_H_
