#include "optim/sgd.h"

#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace optim {

Sgd::Sgd(std::vector<Variable> params, const SgdOptions& options)
    : Optimizer(std::move(params)), options_(options) {
  lr_ = options.lr;
}

void Sgd::Step() {
  // Parameter values change below: invalidate conditioning-keyed caches.
  autograd::BumpParameterVersion();
  for (auto& p : params_) {
    if (!p.grad().defined()) continue;
    Tensor grad = p.grad();
    Tensor& value = p.mutable_value();
    const float wd = static_cast<float>(options_.weight_decay);
    const float mu = static_cast<float>(options_.momentum);
    const float lr = static_cast<float>(lr_);

    if (wd != 0.0f) {
      // L2 regularization folded into the gradient (classic SGD style).
      grad = grad.Clone();
      AxpyInPlace(grad, wd, value);
    }

    if (mu != 0.0f) {
      auto [it, inserted] =
          velocity_.try_emplace(p.impl().get(), Tensor::Zeros(value.shape()));
      Tensor& v = it->second;
      // v = mu * v + grad.
      ScaleInPlace(v, mu);
      AddInPlace(v, grad);
      if (options_.nesterov) {
        // step = grad + mu * v.
        Tensor step = grad.Clone();
        AxpyInPlace(step, mu, v);
        AxpyInPlace(value, -lr, step);
      } else {
        AxpyInPlace(value, -lr, v);
      }
    } else {
      AxpyInPlace(value, -lr, grad);
    }
  }
}

}  // namespace optim
}  // namespace metalora
