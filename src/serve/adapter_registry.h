// Multi-tenant adapter registry: a named catalog of checkpoint-backed
// adapters with budgeted residency, lazy loading, and RCU-style hot-swap.
//
// MetaLoRA's premise is one conditioned adapter per task/tenant; serving
// "millions of users" means thousands of named adapters with a Zipf
// popularity curve, of which only a small working set can hold weights in
// RAM at once. The registry separates the *catalog* (cheap, permanent:
// an AdapterSpec plus a checkpoint path per tenant) from *residency*
// (expensive, budgeted: the constructed adapter with loaded weights and a
// live ConditioningCache):
//
//   Register(name, spec, path)   catalog only — nothing is loaded
//   Acquire(name)                resident handle; lazily builds the adapter
//                                from its spec and loads the checkpoint on
//                                first use, evicting the least-recently-
//                                used resident tenant when the residency
//                                budget is exceeded
//   Publish(name, new_path)      RCU hot-swap: the new version is built and
//                                loaded off to the side while the old one
//                                keeps serving, then the entry's shared_ptr
//                                is swapped under the catalog lock
//
// RCU discipline: Acquire returns a shared_ptr<ResidentAdapter> snapshot.
// Readers (server workers) run forwards on their snapshot without holding
// any registry lock, so an eviction or publish never tears an in-flight
// forward — the old instance's weights are freed when the last in-flight
// reference drops. Evicted tenants keep their catalog entry and checkpoint
// path; a later Acquire rebuilds the adapter from the same spec and bytes,
// which makes reloaded outputs bit-identical to never-evicted ones
// (BuildAdapter is deterministic and checkpoints round-trip bitwise).
//
// Cache consistency across swaps: Publish bumps the global parameter
// version after the swap. Serve-level result caches and any surviving
// conditioning-cache entries are stamped with the version they were
// computed under, so everything computed against the old weights goes
// stale atomically with the swap; the new instance starts with an empty
// ConditioningCache. Each entry carries a version counter (bumped per
// Publish) surfaced on the handle, which makes the swap point observable
// in tests and benches.
//
// Failure isolation: a torn or missing checkpoint fails the Acquire with
// Corruption/IOError and leaves the entry non-resident (load_failures
// counts it); a failed Publish leaves the old version serving untouched.
#ifndef METALORA_SERVE_ADAPTER_REGISTRY_H_
#define METALORA_SERVE_ADAPTER_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/adapter_config.h"
#include "core/adapter_factory.h"
#include "tensor/lowp.h"

namespace metalora {
namespace serve {

struct AdapterRegistryOptions {
  /// Maximum number of tenants holding loaded weights at once. Acquiring a
  /// non-resident tenant at the budget evicts the least-recently-used
  /// resident one.
  int64_t residency_budget = 32;
  /// Register bf16+int8 shadows (tensor/lowp.h) for every rank-2 parameter
  /// of each instance as it loads — the quantize-once half of the int8
  /// serving path: scales and packs are computed at load/Publish time, and
  /// workers running under a low-precision autocast policy find them by
  /// weight pointer. Instances are immutable after load, so the shadows
  /// can never go stale; they drop with the instance (eviction, swap).
  /// Costs ~3 bytes/element of resident rank-2 weight; off by default so
  /// fp32-only deployments pay nothing.
  bool register_precision_shadows = false;
};

/// One resident (loaded) adapter version. Immutable after load except for
/// the adapter's internal caches; shared between the registry and every
/// in-flight batch that acquired it.
struct ResidentAdapter {
  std::unique_ptr<core::Adapter> adapter;
  /// The adapter's own ΔW/seed cache; nullptr for kinds without one.
  core::ConditioningCache* conditioning_cache = nullptr;
  /// The entry's publish counter at load time (1 for the initial version).
  uint64_t version = 0;
  /// Low-precision shadow registrations for this instance's rank-2
  /// parameters (empty unless AdapterRegistryOptions::
  /// register_precision_shadows). RAII: the packs unregister when this
  /// instance's last reference drops.
  std::vector<lowp::ShadowHandle> precision_shadows;
  /// Serializes SetFeatures + Forward on this instance (adapters bind
  /// features statefully). During a hot-swap the old and new instances have
  /// independent locks, so draining forwards never block the new version.
  std::mutex forward_mu;
};

struct AdapterRegistryStats {
  int64_t registered = 0;  // catalog size (gauge)
  int64_t resident = 0;    // tenants currently holding weights (gauge)
  /// Request-weighted residency accounting: Acquire(name, rows) adds rows
  /// to hits when the tenant was already resident, to misses when it had
  /// to be loaded. hit-rate = hits / (hits + misses).
  int64_t request_hits = 0;
  int64_t request_misses = 0;
  int64_t loads = 0;          // successful checkpoint loads (lazy + publish)
  int64_t load_failures = 0;  // failed loads (missing/torn checkpoint)
  int64_t evictions = 0;      // residents dropped for budget
  int64_t swaps = 0;          // Publishes that replaced a resident version

  double ResidencyHitRate() const {
    const int64_t total = request_hits + request_misses;
    return total > 0
               ? static_cast<double>(request_hits) / static_cast<double>(total)
               : 0.0;
  }
};

class AdapterRegistry {
 public:
  explicit AdapterRegistry(AdapterRegistryOptions options);

  AdapterRegistry(const AdapterRegistry&) = delete;
  AdapterRegistry& operator=(const AdapterRegistry&) = delete;

  /// Catalogs `name` as buildable-from-`spec` with weights at
  /// `checkpoint_path`. Loads nothing. InvalidArgument on duplicates.
  Status Register(const std::string& name, const core::AdapterSpec& spec,
                  const std::string& checkpoint_path);

  /// Returns a snapshot handle to the tenant's current resident version,
  /// lazily loading (and evicting under budget) as needed. `request_rows`
  /// weights the hit/miss accounting by the number of requests this
  /// Acquire serves. NotFound for unregistered names; the checkpoint's
  /// IOError/Corruption/InvalidArgument passes through on a failed load.
  Result<std::shared_ptr<ResidentAdapter>> Acquire(const std::string& name,
                                                   int64_t request_rows = 1);

  /// RCU hot-swap: builds the tenant's adapter from its spec, loads
  /// `checkpoint_path` off to the side, then atomically replaces the
  /// resident version (installing it if the tenant was cold) and bumps the
  /// entry's version counter and the global parameter version. In-flight
  /// forwards finish on the old instance; a failed load leaves the old
  /// version serving and the catalog unchanged.
  Status Publish(const std::string& name, const std::string& checkpoint_path);

  /// Drops the tenant's weights (catalog entry stays). No-op when cold.
  /// Counted as an eviction; primarily for tests and admin tooling.
  Status Evict(const std::string& name);

  /// The entry's publish counter (1 after Register's first load). NotFound
  /// for unregistered names.
  Result<uint64_t> CurrentVersion(const std::string& name) const;

  bool IsRegistered(const std::string& name) const;
  bool IsResident(const std::string& name) const;

  AdapterRegistryStats stats() const;

 private:
  struct Entry {
    core::AdapterSpec spec;
    std::string checkpoint_path;
    uint64_t version = 1;         // bumped by Publish
    uint64_t last_used_tick = 0;  // LRU clock stamp
    std::shared_ptr<ResidentAdapter> resident;  // null when cold
    /// Serializes cold loads and publishes for this entry so concurrent
    /// cold Acquires collapse into one checkpoint read. Never held while
    /// mu_ is held (always taken first), and never held during forwards.
    std::mutex load_mu;
  };

  /// Builds + loads one instance (no locks held by caller requirement:
  /// called outside mu_). `register_shadows` packs low-precision shadows
  /// for the fresh instance's rank-2 parameters.
  static Result<std::shared_ptr<ResidentAdapter>> LoadInstance(
      const core::AdapterSpec& spec, const std::string& path,
      uint64_t version, bool register_shadows);

  /// Installs `handle` as `entry`'s resident version, evicting LRU
  /// residents (never `entry` itself) while over budget. Caller holds mu_.
  void InstallLocked(Entry* entry, std::shared_ptr<ResidentAdapter> handle);

  AdapterRegistryOptions options_;

  mutable std::mutex mu_;
  /// unique_ptr values keep Entry addresses stable across rehashes, so
  /// Acquire can drop mu_ during a load while holding the entry pointer.
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  int64_t resident_count_ = 0;
  uint64_t tick_ = 0;
  AdapterRegistryStats stats_;
};

}  // namespace serve
}  // namespace metalora

#endif  // METALORA_SERVE_ADAPTER_REGISTRY_H_
