// Tensor Ring (TR) format (paper §II.D and Eq. 7).
//
// An N-th order tensor is represented by ring-connected 3rd-order cores
// G^(n) ∈ R^{r_{n-1} × I_n × r_n} with r_0 = r_N:
//   X[i1..iN] = Trace( G^(1)[:,i1,:] · G^(2)[:,i2,:] · … · G^(N)[:,iN,:] ).
// The MetaLoRA (TR) update (Eq. 7) is a three-node ring over a matrix whose
// third core C ∈ R^{R×R} carries no free index and is generated per input.
#ifndef METALORA_TN_TR_FORMAT_H_
#define METALORA_TN_TR_FORMAT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace metalora {
namespace tn {

class TrFormat {
 public:
  /// Builds zero cores for extents `mode_dims` with uniform bond rank `rank`
  /// (all r_n equal; the common square-ring case used by the paper).
  TrFormat(std::vector<int64_t> mode_dims, int64_t rank);

  /// Random initialization: cores ~ N(0, 1/rank) so the reconstruction has
  /// O(1) scale.
  static TrFormat Random(std::vector<int64_t> mode_dims, int64_t rank,
                         Rng& rng);

  int64_t rank() const { return rank_; }
  int order() const { return static_cast<int>(mode_dims_.size()); }
  const std::vector<int64_t>& mode_dims() const { return mode_dims_; }

  /// Core G^(n), shape [R, I_n, R].
  const Tensor& core(int n) const;
  Tensor& mutable_core(int n);

  /// Materializes the full tensor by sequential core contraction and a final
  /// ring trace.
  Tensor Reconstruct() const;

  /// Number of stored parameters: Σ_n R · I_n · R.
  int64_t ParamCount() const;

  /// Parameters of a dense tensor with the same mode extents.
  int64_t DenseParamCount() const;

 private:
  std::vector<int64_t> mode_dims_;
  int64_t rank_;
  std::vector<Tensor> cores_;
};

/// MetaLoRA (TR) matrix update (Eq. 7):
///   ΔW[i,o] = Σ_{r0,r1,r2} A[r0,i,r1] · B[r1,o,r2] · C[r2,r0]
/// `a` is [R,I,R], `b` is [R,O,R], `c` is [R,R]. Returns [I,O].
Result<Tensor> TrMatrix(const Tensor& a, const Tensor& b, const Tensor& c);

}  // namespace tn
}  // namespace metalora

#endif  // METALORA_TN_TR_FORMAT_H_
