// Packed GEMM engine throughput vs the retained naive reference.
//
// Times GemmPacked against GemmReference on paper-relevant shapes — LoRA
// rank-R skinny matmuls (Eq. 5 adapters), ResNet conv-as-GEMM panels, KNN
// distance matrices, and square controls — reporting GFLOP/s per shape
// and writing BENCH_gemm.json. Two contracts are enforced:
//
//   1. Correctness (always, including --smoke): the packed engine must be
//      bit-identical to the reference for every shape/layout here. This is
//      the CI guard for the vectorized path.
//   2. Throughput (skipped under --smoke so weak CI runners don't flake):
//      the 512×512×512 case must beat the naive reference by >= 2x.
//
// Flags: --smoke (1 rep, no perf assertion), --reps=N (packed-kernel rep
// override), --profile (per-shape RuntimeContext op table at exit).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "autograd/runtime_context.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "tensor/gemm.h"
#include "tensor/random_init.h"
#include "tensor/tensor.h"

using namespace metalora;  // NOLINT

namespace {

struct GemmCase {
  const char* name;
  int64_t n, k, m;
  bool trans_a, trans_b;
};

// Shapes mirror the library's hot paths: LoRA down/up projections run as
// x·Wᵀ (trans_b, like autograd::Linear), conv-as-GEMM panels as W·cols,
// KNN distance blocks as Q·Rᵀ, and backward dW as gᵀ·x (trans_a).
constexpr GemmCase kCases[] = {
    {"square_256", 256, 256, 256, false, false},
    {"square_512", 512, 512, 512, false, false},
    {"lora_down_r8", 64, 1024, 8, false, true},
    {"lora_up_r8", 64, 8, 1024, false, true},
    {"lora_down_r1", 64, 1024, 1, false, true},
    {"conv3x3_gemm", 64, 576, 196, false, false},
    {"knn_dist", 128, 64, 2048, false, true},
    {"backward_dW_transA", 256, 64, 256, true, false},
};

struct CaseResult {
  double ref_gflops = 0.0;
  double packed_gflops = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

double TimeKernel(const std::function<void()>& run, int reps) {
  run();  // warm-up: settles packing scratch capacity
  Timer t;
  for (int i = 0; i < reps; ++i) run();
  return t.Seconds() / reps;
}

CaseResult RunCase(const GemmCase& c, int packed_reps, int ref_reps,
                   autograd::RuntimeContext& ctx) {
  Rng rng(static_cast<uint64_t>(c.n * 131 + c.k * 17 + c.m));
  const Shape a_shape = c.trans_a ? Shape{c.k, c.n} : Shape{c.n, c.k};
  const Shape b_shape = c.trans_b ? Shape{c.m, c.k} : Shape{c.k, c.m};
  Tensor a = RandomNormal(a_shape, rng);
  Tensor b = RandomNormal(b_shape, rng);
  Tensor c_ref{Shape{c.n, c.m}};
  Tensor c_packed{Shape{c.n, c.m}};

  const double flops = 2.0 * static_cast<double>(c.n) *
                       static_cast<double>(c.k) * static_cast<double>(c.m);

  const double ref_sec = TimeKernel(
      [&] {
        GemmReference(a.data(), c.trans_a, b.data(), c.trans_b, c_ref.data(),
                      c.n, c.k, c.m, /*accumulate=*/false);
      },
      ref_reps);

  Timer packed_timer;
  const double packed_sec = TimeKernel(
      [&] {
        GemmPacked(a.data(), c.trans_a, b.data(), c.trans_b, c_packed.data(),
                   c.n, c.k, c.m, /*accumulate=*/false);
      },
      packed_reps);
  if (ctx.profiling()) {
    ctx.RecordForward(c.name,
                      c.n * c.m * static_cast<int64_t>(sizeof(float)),
                      static_cast<int64_t>(packed_timer.Seconds() * 1e9));
  }

  CaseResult r;
  r.ref_gflops = flops / ref_sec * 1e-9;
  r.packed_gflops = flops / packed_sec * 1e-9;
  r.speedup = ref_sec / packed_sec;
  r.bit_identical = true;
  for (int64_t i = 0; i < c_ref.numel(); ++i) {
    if (c_ref.flat(i) != c_packed.flat(i)) {
      r.bit_identical = false;
      std::cout << "MISMATCH " << c.name << " at flat index " << i << ": ref "
                << c_ref.flat(i) << " vs packed " << c_packed.flat(i) << "\n";
      break;
    }
  }
  return r;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli;
  cli.AddBool("smoke", false,
              "1 rep per kernel, skip throughput assertions (CI correctness "
              "guard on weak runners)");
  cli.AddInt("reps", 0, "override packed-kernel reps (0 = auto by FLOPs)");
  cli.AddBool("profile", false,
              "record per-shape timings in the RuntimeContext and dump the "
              "op table at exit");
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n" << cli.Usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.Usage(argv[0]);
    return 0;
  }
  const bool smoke = cli.GetBool("smoke");
  const bool profile = cli.GetBool("profile");

  autograd::RuntimeContext ctx;
  ctx.set_profiling(profile);
  autograd::RuntimeContextScope scope(&ctx);

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "=== Packed GEMM engine vs naive reference ===\n\n"
            << "hardware threads: " << hw << (smoke ? " (smoke mode)" : "")
            << "\n";

  // Run the tile sweep up front so every timed shape below uses the chosen
  // blocking (the lazy trigger would otherwise fold the sweep into the
  // first large case's warm-up).
  const GemmTiles tiles = AutotuneGemmTiles();
  std::cout << "autotuned tiles: MC=" << tiles.mc << " KC=" << tiles.kc
            << " NC=" << tiles.nc << "\n\n";

  TablePrinter table("gemm kernels");
  table.SetHeader({"shape", "n", "k", "m", "layout", "ref GF/s", "packed GF/s",
                   "speedup", "bit-identical"});

  bool all_identical = true;
  double square512_speedup = 0.0;
  std::vector<CaseResult> results;
  for (const GemmCase& c : kCases) {
    const double flops = 2.0 * static_cast<double>(c.n) *
                         static_cast<double>(c.k) * static_cast<double>(c.m);
    int packed_reps = static_cast<int>(cli.GetInt("reps"));
    if (packed_reps <= 0) {
      packed_reps = std::max(3, static_cast<int>(4e8 / flops));
    }
    const int ref_reps = smoke ? 1 : std::max(1, packed_reps / 8);
    if (smoke) packed_reps = 1;
    const CaseResult r = RunCase(c, packed_reps, ref_reps, ctx);
    results.push_back(r);
    all_identical = all_identical && r.bit_identical;
    if (std::string(c.name) == "square_512") square512_speedup = r.speedup;
    const char* layout = c.trans_a ? "Tᵀ·B" : (c.trans_b ? "A·Bᵀ" : "A·B");
    table.AddRow({c.name, std::to_string(c.n), std::to_string(c.k),
                  std::to_string(c.m), layout, Fmt(r.ref_gflops),
                  Fmt(r.packed_gflops), Fmt(r.speedup),
                  r.bit_identical ? "yes" : "NO"});
  }
  table.Print(std::cout);

  bool ok = true;
  if (!all_identical) {
    std::cout << "\nFAIL: packed engine diverges bit-wise from the naive "
                 "reference\n";
    ok = false;
  }
  const bool assert_speedup = !smoke;
  if (assert_speedup && square512_speedup < 2.0) {
    std::cout << "\nFAIL: square_512 speedup " << Fmt(square512_speedup)
              << "x < 2x over the naive reference\n";
    ok = false;
  }
  if (ok) {
    std::cout << "\nOK: all shapes bit-identical"
              << (assert_speedup
                      ? ", square_512 speedup " + Fmt(square512_speedup) + "x"
                      : " (throughput assertion skipped in smoke mode)")
              << "\n";
  }

  std::ofstream json("BENCH_gemm.json");
  json << "{\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"autotuned_tiles\": {\"mc\": " << tiles.mc
       << ", \"kc\": " << tiles.kc << ", \"nc\": " << tiles.nc << "},\n"
       << "  \"shapes\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const GemmCase& c = kCases[i];
    const CaseResult& r = results[i];
    json << "    {\"name\": \"" << c.name << "\", \"n\": " << c.n
         << ", \"k\": " << c.k << ", \"m\": " << c.m
         << ", \"trans_a\": " << (c.trans_a ? "true" : "false")
         << ", \"trans_b\": " << (c.trans_b ? "true" : "false")
         << ", \"ref_gflops\": " << r.ref_gflops
         << ", \"packed_gflops\": " << r.packed_gflops
         << ", \"speedup\": " << r.speedup << ", \"bit_identical\": "
         << (r.bit_identical ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"square512_speedup\": " << square512_speedup << ",\n"
       << "  \"speedup_asserted\": " << (assert_speedup ? "true" : "false")
       << ",\n"
       << "  \"ok\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "wrote BENCH_gemm.json\n";

  if (profile) {
    std::cout << "\n";
    autograd::PrintOpProfileTable(ctx, std::cout);
  }
  return ok ? 0 : 1;
}
