// Step-arena backward: serving a training step's whole graph — forward
// intermediates, saved tensors, backward scratch — from a generation-tagged
// WorkspaceArena must be byte-identical to heap allocation, pin leaf
// gradients so they survive the generation bump, and stop growing once the
// first generation has sized the blocks.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/graph.h"
#include "autograd/ops.h"
#include "autograd/runtime_context.h"
#include "common/rng.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace autograd {
namespace {

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.numel())),
            0);
}

// A small MLP trained for `steps` plain-SGD steps on deterministic data.
// Returns every per-step leaf gradient followed by the final parameters.
std::vector<Tensor> RunTrainingSteps(bool arena_mode, int steps) {
  WorkspaceArena arena;
  RuntimeContext ctx;
  std::optional<RuntimeContextScope> scope;
  if (arena_mode) {
    ctx.set_arena(&arena);
    ctx.set_arena_serves_grad(true);
    scope.emplace(&ctx);
  }

  Rng prng(7);
  Variable w1(RandomUniform(Shape{12, 10}, prng, -0.5f, 0.5f), true);
  Variable b1(RandomUniform(Shape{12}, prng, -0.1f, 0.1f), true);
  Variable w2(RandomUniform(Shape{4, 12}, prng, -0.5f, 0.5f), true);
  Variable b2(RandomUniform(Shape{4}, prng, -0.1f, 0.1f), true);
  std::vector<Variable> params = {w1, b1, w2, b2};

  std::vector<Tensor> out;
  for (int s = 0; s < steps; ++s) {
    if (arena_mode) arena.NextGeneration();
    Rng drng(100 + static_cast<uint64_t>(s));
    Variable x(RandomUniform(Shape{6, 10}, drng, -1.0f, 1.0f), false);
    Tensor target = RandomUniform(Shape{6, 4}, drng, -1.0f, 1.0f);

    Variable h = Relu(Linear(x, w1, b1));
    Variable loss = MseLoss(Linear(h, w2, b2), target);
    for (Variable& p : params) p.ZeroGrad();
    EXPECT_TRUE(Backward(loss).ok());
    for (Variable& p : params) {
      out.push_back(p.grad().Clone());
      AxpyInPlace(p.mutable_value(), -0.1f, p.grad());
    }
  }
  for (Variable& p : params) out.push_back(p.value().Clone());
  return out;
}

TEST(ArenaBackward, GradsAndParamsBitIdenticalToHeap) {
  constexpr int kSteps = 4;
  std::vector<Tensor> heap = RunTrainingSteps(/*arena_mode=*/false, kSteps);
  std::vector<Tensor> arena = RunTrainingSteps(/*arena_mode=*/true, kSteps);
  ASSERT_EQ(heap.size(), arena.size());
  for (size_t i = 0; i < heap.size(); ++i) {
    ExpectBitIdentical(heap[i], arena[i]);
  }
}

TEST(ArenaBackward, GradcheckPassesUnderStepArena) {
  WorkspaceArena arena;
  RuntimeContext ctx;
  ctx.set_arena(&arena);
  ctx.set_arena_serves_grad(true);
  RuntimeContextScope scope(&ctx);

  Rng rng(3);
  GradCheckReport r = CheckGradients(
      [](const std::vector<Variable>& v) {
        return SumAll(Mul(Matmul(v[0], v[1]), Matmul(v[0], v[1])));
      },
      {RandomUniform(Shape{3, 5}, rng, -1.0f, 1.0f),
       RandomUniform(Shape{5, 4}, rng, -1.0f, 1.0f)});
  EXPECT_TRUE(r.passed) << "max rel err " << r.max_rel_error;
}

TEST(ArenaBackward, PinnedLeafGradsSurviveGenerationBump) {
  WorkspaceArena arena;
  RuntimeContext ctx;
  ctx.set_arena(&arena);
  ctx.set_arena_serves_grad(true);
  RuntimeContextScope scope(&ctx);

  Rng rng(9);
  Variable w(RandomUniform(Shape{8, 6}, rng, -1.0f, 1.0f), true);
  Variable x1(RandomUniform(Shape{4, 6}, rng, -1.0f, 1.0f), false);
  arena.NextGeneration();
  ASSERT_TRUE(Backward(SumAll(Square(Linear(x1, w, Variable())))).ok());

  // `first` shares the pinned gradient's buffer; `snapshot` is a copy. If
  // the gradient were arena-backed, the next generation's allocations
  // would clobber `first` and the comparison below would fail.
  Tensor first = w.grad();
  Tensor snapshot = first.Clone();

  arena.NextGeneration();
  Variable x2(RandomUniform(Shape{4, 6}, rng, -2.0f, 2.0f), false);
  w.ZeroGrad();
  ASSERT_TRUE(Backward(SumAll(Square(Linear(x2, w, Variable())))).ok());

  ExpectBitIdentical(first, snapshot);
}

TEST(ArenaBackward, CountersBookArenaServiceAndPins) {
  WorkspaceArena arena;
  RuntimeContext ctx;
  ctx.set_arena(&arena);
  ctx.set_arena_serves_grad(true);
  RuntimeContextScope scope(&ctx);

  Rng rng(11);
  Variable w(RandomUniform(Shape{8, 6}, rng, -1.0f, 1.0f), true);
  Variable b(RandomUniform(Shape{8}, rng, -1.0f, 1.0f), true);
  Variable x(RandomUniform(Shape{4, 6}, rng, -1.0f, 1.0f), false);

  arena.NextGeneration();
  ctx.ResetStats();
  const int64_t served_before = ctx.arena_served();
  Variable loss = SumAll(Relu(Linear(x, w, b)));
  const int64_t served_forward = ctx.arena_served();
  EXPECT_GT(served_forward, served_before);

  w.ZeroGrad();
  b.ZeroGrad();
  ASSERT_TRUE(Backward(loss).ok());
  EXPECT_GT(ctx.arena_served(), served_forward);  // backward also on arena
  EXPECT_EQ(ctx.pin_count(), 2);                  // one pin per leaf grad
  EXPECT_GT(ctx.pin_bytes(), 0);
  EXPECT_GT(ctx.ArenaHitRate(), 0.5);
}

TEST(ArenaBackward, FootprintStabilizesAcrossGenerations) {
  WorkspaceArena arena;
  RuntimeContext ctx;
  ctx.set_arena(&arena);
  ctx.set_arena_serves_grad(true);
  RuntimeContextScope scope(&ctx);

  Rng rng(13);
  Variable w1(RandomUniform(Shape{16, 10}, rng, -0.5f, 0.5f), true);
  Variable w2(RandomUniform(Shape{4, 16}, rng, -0.5f, 0.5f), true);
  Variable x(RandomUniform(Shape{8, 10}, rng, -1.0f, 1.0f), false);

  auto one_step = [&] {
    arena.NextGeneration();
    w1.ZeroGrad();
    w2.ZeroGrad();
    ASSERT_TRUE(Backward(SumAll(
        Linear(Relu(Linear(x, w1, Variable())), w2, Variable()))).ok());
  };

  one_step();
  one_step();
  const int64_t misses_warm = arena.block_misses();
  const int64_t capacity_warm = arena.capacity_bytes();
  for (int s = 0; s < 3; ++s) one_step();
  // The identical allocation sequence replays inside the warm capacity:
  // no new blocks, no new heap traffic.
  EXPECT_EQ(arena.block_misses(), misses_warm);
  EXPECT_EQ(arena.capacity_bytes(), capacity_warm);
  EXPECT_GT(arena.block_hits(), 0);
  EXPECT_EQ(arena.generation(), 5u);
}

}  // namespace
}  // namespace autograd
}  // namespace metalora
