file(REMOVE_RECURSE
  "CMakeFiles/conv_lora_finetune.dir/conv_lora_finetune.cpp.o"
  "CMakeFiles/conv_lora_finetune.dir/conv_lora_finetune.cpp.o.d"
  "conv_lora_finetune"
  "conv_lora_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_lora_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
