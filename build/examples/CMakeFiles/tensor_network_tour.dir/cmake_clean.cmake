file(REMOVE_RECURSE
  "CMakeFiles/tensor_network_tour.dir/tensor_network_tour.cpp.o"
  "CMakeFiles/tensor_network_tour.dir/tensor_network_tour.cpp.o.d"
  "tensor_network_tour"
  "tensor_network_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_network_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
