#include "core/adapter_config.h"

#include "autograd/runtime_context.h"
#include "common/check.h"

namespace metalora {
namespace core {

const Adapter::ReplicaBinding& Adapter::CurrentSlot() const {
  const int id = autograd::RuntimeContext::Current().replica_id();
  ML_CHECK_GE(id, 0);
  ML_CHECK_LT(static_cast<size_t>(id), bindings_.size())
      << "replica binding slot " << id
      << " not prepared; call EnsureReplicaSlots before forking lanes";
  return bindings_[static_cast<size_t>(id)];
}

Adapter::ReplicaBinding& Adapter::CurrentSlot() {
  return const_cast<ReplicaBinding&>(
      static_cast<const Adapter*>(this)->CurrentSlot());
}

void Adapter::SetFeatures(const nn::Variable& features) {
  CurrentSlot().features = features;
}

void Adapter::SetTaskIds(const std::vector<int64_t>& task_ids) {
  CurrentSlot().task_ids = task_ids;
}

void Adapter::EnsureReplicaSlots(int n) {
  ML_CHECK_GT(n, 0);
  if (static_cast<size_t>(n) > bindings_.size()) {
    bindings_.resize(static_cast<size_t>(n));
  }
}

const nn::Variable& Adapter::bound_features() const {
  return CurrentSlot().features;
}

const std::vector<int64_t>& Adapter::bound_task_ids() const {
  return CurrentSlot().task_ids;
}

std::string AdapterKindName(AdapterKind kind) {
  switch (kind) {
    case AdapterKind::kNone:
      return "Original";
    case AdapterKind::kLora:
      return "LoRA";
    case AdapterKind::kMultiLora:
      return "Multi-LoRA";
    case AdapterKind::kMetaLoraCp:
      return "Meta-LoRA CP";
    case AdapterKind::kMetaLoraTr:
      return "Meta-LoRA TR";
    case AdapterKind::kMoeLora:
      return "MoE-LoRA";
  }
  return "Unknown";
}

}  // namespace core
}  // namespace metalora
