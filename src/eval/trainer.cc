#include "eval/trainer.h"

#include <cstring>

#include "autograd/runtime_context.h"
#include "common/check.h"
#include "eval/train_loop.h"

namespace metalora {
namespace eval {

std::string BackboneKindName(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kResNet:
      return "ResNet";
    case BackboneKind::kMlpMixer:
      return "MLP-Mixer";
    case BackboneKind::kTransformer:
      return "ViT";
  }
  return "Unknown";
}

Backbone MakeResNetBackbone(const nn::ResNetConfig& config) {
  Backbone bb;
  auto net = std::make_unique<nn::ResNet>(config);
  nn::ResNet* raw = net.get();
  bb.module = std::move(net);
  bb.forward_features = [raw](const nn::Variable& x) {
    return raw->ForwardFeatures(x);
  };
  bb.forward_logits = [raw](const nn::Variable& x) { return raw->Forward(x); };
  bb.feature_dim = raw->feature_dim();
  return bb;
}

Backbone MakeMixerBackbone(const nn::MlpMixerConfig& config) {
  Backbone bb;
  auto net = std::make_unique<nn::MlpMixer>(config);
  nn::MlpMixer* raw = net.get();
  bb.module = std::move(net);
  bb.forward_features = [raw](const nn::Variable& x) {
    return raw->ForwardFeatures(x);
  };
  bb.forward_logits = [raw](const nn::Variable& x) { return raw->Forward(x); };
  bb.feature_dim = raw->feature_dim();
  return bb;
}

Backbone MakeTransformerBackbone(const nn::TransformerConfig& config) {
  Backbone bb;
  auto net = std::make_unique<nn::VisionTransformer>(config);
  nn::VisionTransformer* raw = net.get();
  bb.module = std::move(net);
  bb.forward_features = [raw](const nn::Variable& x) {
    return raw->ForwardFeatures(x);
  };
  bb.forward_logits = [raw](const nn::Variable& x) { return raw->Forward(x); };
  bb.feature_dim = raw->feature_dim();
  return bb;
}

Result<TrainStats> PretrainBackbone(Backbone& backbone,
                                    const data::MultiTaskDataset& train,
                                    const TrainOptions& options) {
  return TrainLoop(backbone, train, options, nullptr);
}

Result<TrainStats> AdaptModel(Backbone& backbone,
                              const data::MultiTaskDataset& train,
                              const TrainOptions& options, AdaptContext* ctx) {
  if (ctx == nullptr) {
    return Status::InvalidArgument("AdaptModel requires a context");
  }
  return TrainLoop(backbone, train, options, ctx);
}

Tensor ExtractDatasetFeatures(Backbone& backbone,
                              const data::MultiTaskDataset& ds,
                              int64_t batch_size, AdaptContext* ctx) {
  ML_CHECK_GT(ds.size(), 0);
  backbone.module->SetTraining(false);
  Tensor out{Shape{ds.size(), backbone.feature_dim}};
  data::DataLoader loader(ds, batch_size, /*shuffle=*/false, /*seed=*/0);

  // Dataset-scale inference: run every batch on the arena fast path. One
  // Reset per batch reclaims all intermediates; the feature rows are copied
  // into `out` (heap) before the next batch reuses the space.
  autograd::WorkspaceArena arena;
  autograd::RuntimeContext rctx;
  rctx.set_grad_enabled(false);
  rctx.set_arena(&arena);
  autograd::RuntimeContextScope scope(&rctx);

  int64_t row = 0;
  for (int64_t b = 0; b < loader.num_batches(); ++b) {
    arena.NextGeneration();
    data::Batch batch = loader.GetBatch(b);
    if (ctx != nullptr) {
      if (ctx->extractor != nullptr) {
        Tensor feats = ctx->extractor->Extract(batch.images);
        ctx->injection.BindFeatures(
            nn::Variable(std::move(feats), /*requires_grad=*/false));
      }
      ctx->injection.BindTaskIds(batch.task_ids);
    }
    nn::Variable f = backbone.forward_features(
        nn::Variable(batch.images, /*requires_grad=*/false));
    std::memcpy(out.data() + row * backbone.feature_dim, f.value().data(),
                sizeof(float) *
                    static_cast<size_t>(batch.size() * backbone.feature_dim));
    row += batch.size();
  }
  return out;
}

}  // namespace eval
}  // namespace metalora
