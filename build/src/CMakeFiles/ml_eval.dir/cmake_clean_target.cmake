file(REMOVE_RECURSE
  "libml_eval.a"
)
