#include "tn/tr_format.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace tn {
namespace {

// Brute-force TR reconstruction: X[i..] = Tr(Π G^(n)[:, i_n, :]).
Tensor TrReconstructNaive(const TrFormat& tr) {
  const auto& dims = tr.mode_dims();
  const int64_t r = tr.rank();
  Tensor out{Shape(dims)};
  std::vector<int64_t> idx(dims.size(), 0);
  for (int64_t flat = 0; flat < out.numel(); ++flat) {
    // Chain product of slice matrices.
    Tensor m{Shape{r, r}};
    for (int64_t p = 0; p < r; ++p) m.flat(p * r + p) = 1.0f;  // identity
    for (size_t n = 0; n < dims.size(); ++n) {
      const Tensor& g = tr.core(static_cast<int>(n));
      Tensor slice{Shape{r, r}};
      for (int64_t p = 0; p < r; ++p)
        for (int64_t q = 0; q < r; ++q)
          slice.flat(p * r + q) = g.at({p, idx[n], q});
      // m = m · slice
      Tensor next{Shape{r, r}};
      for (int64_t p = 0; p < r; ++p)
        for (int64_t q = 0; q < r; ++q) {
          double acc = 0;
          for (int64_t s = 0; s < r; ++s)
            acc += static_cast<double>(m.flat(p * r + s)) *
                   slice.flat(s * r + q);
          next.flat(p * r + q) = static_cast<float>(acc);
        }
      m = next;
    }
    double trace = 0;
    for (int64_t p = 0; p < r; ++p) trace += m.flat(p * r + p);
    out.flat(flat) = static_cast<float>(trace);
    for (int i = static_cast<int>(dims.size()) - 1; i >= 0; --i) {
      if (++idx[static_cast<size_t>(i)] < dims[static_cast<size_t>(i)]) break;
      idx[static_cast<size_t>(i)] = 0;
    }
  }
  return out;
}

TEST(TrFormatTest, ReconstructMatchesNaiveOrder2) {
  Rng rng(1);
  TrFormat tr = TrFormat::Random({4, 5}, 3, rng);
  EXPECT_TRUE(AllClose(tr.Reconstruct(), TrReconstructNaive(tr), 1e-4f, 1e-4f));
}

TEST(TrFormatTest, ReconstructMatchesNaiveOrder3) {
  Rng rng(2);
  TrFormat tr = TrFormat::Random({3, 2, 4}, 2, rng);
  EXPECT_TRUE(AllClose(tr.Reconstruct(), TrReconstructNaive(tr), 1e-4f, 1e-4f));
}

TEST(TrFormatTest, ReconstructMatchesNaiveOrder4) {
  Rng rng(3);
  TrFormat tr = TrFormat::Random({2, 3, 2, 2}, 2, rng);
  EXPECT_TRUE(AllClose(tr.Reconstruct(), TrReconstructNaive(tr), 1e-4f, 1e-4f));
}

TEST(TrFormatTest, RankOneRingIsProductOfVectors) {
  // With R = 1 each core is a vector and the ring is their outer product.
  TrFormat tr({2, 3}, 1);
  tr.mutable_core(0).CopyDataFrom(Tensor::FromVector(Shape{1, 2, 1}, {2, 3}));
  tr.mutable_core(1).CopyDataFrom(
      Tensor::FromVector(Shape{1, 3, 1}, {1, 10, 100}));
  Tensor x = tr.Reconstruct();
  EXPECT_EQ(x.ToVector(), (std::vector<float>{2, 20, 200, 3, 30, 300}));
}

TEST(TrFormatTest, ParamCounts) {
  TrFormat tr({10, 20}, 3);
  EXPECT_EQ(tr.ParamCount(), 3 * 10 * 3 + 3 * 20 * 3);
  EXPECT_EQ(tr.DenseParamCount(), 200);
}

TEST(TrMatrixTest, MatchesExplicitSum) {
  // Eq. 7 by brute force.
  Rng rng(4);
  const int64_t r = 2, i_dim = 3, o_dim = 4;
  Tensor a = RandomNormal(Shape{r, i_dim, r}, rng);
  Tensor b = RandomNormal(Shape{r, o_dim, r}, rng);
  Tensor c = RandomNormal(Shape{r, r}, rng);
  auto fast = TrMatrix(a, b, c);
  ASSERT_TRUE(fast.ok());
  for (int64_t i = 0; i < i_dim; ++i) {
    for (int64_t o = 0; o < o_dim; ++o) {
      double acc = 0;
      for (int64_t r0 = 0; r0 < r; ++r0)
        for (int64_t r1 = 0; r1 < r; ++r1)
          for (int64_t r2 = 0; r2 < r; ++r2)
            acc += static_cast<double>(a.at({r0, i, r1})) * b.at({r1, o, r2}) *
                   c.at({r2, r0});
      EXPECT_NEAR(fast->at({i, o}), acc, 1e-4);
    }
  }
}

TEST(TrMatrixTest, MatchesThreeCoreRingReconstruction) {
  // TrMatrix(A, B, C) must equal the order-3 ring {A, B, C'} reconstructed
  // and the dummy mode of C' marginalized — equivalently, a TrFormat over
  // modes {I, O, 1} with the third core holding C.
  Rng rng(5);
  const int64_t r = 3, i_dim = 4, o_dim = 2;
  Tensor a = RandomNormal(Shape{r, i_dim, r}, rng);
  Tensor b = RandomNormal(Shape{r, o_dim, r}, rng);
  Tensor c = RandomNormal(Shape{r, r}, rng);

  TrFormat ring({i_dim, o_dim, 1}, r);
  ring.mutable_core(0).CopyDataFrom(a);
  ring.mutable_core(1).CopyDataFrom(b);
  ring.mutable_core(2).CopyDataFrom(c.Reshape(Shape{r, 1, r}));
  Tensor ref = ring.Reconstruct().Reshape(Shape{i_dim, o_dim});

  auto fast = TrMatrix(a, b, c);
  ASSERT_TRUE(fast.ok());
  EXPECT_TRUE(AllClose(fast.value(), ref, 1e-4f, 1e-4f));
}

TEST(TrMatrixTest, IdentityCoreGivesBondTrace) {
  // With C = I the update is Σ_{r0,r1} A[r0,·,r1] B[r1,·,r0].
  Rng rng(6);
  const int64_t r = 2, i_dim = 2, o_dim = 2;
  Tensor a = RandomNormal(Shape{r, i_dim, r}, rng);
  Tensor b = RandomNormal(Shape{r, o_dim, r}, rng);
  Tensor eye{Shape{r, r}};
  for (int64_t p = 0; p < r; ++p) eye.flat(p * r + p) = 1.0f;
  auto fast = TrMatrix(a, b, eye);
  ASSERT_TRUE(fast.ok());
  for (int64_t i = 0; i < i_dim; ++i) {
    for (int64_t o = 0; o < o_dim; ++o) {
      double acc = 0;
      for (int64_t r0 = 0; r0 < r; ++r0)
        for (int64_t r1 = 0; r1 < r; ++r1)
          acc += static_cast<double>(a.at({r0, i, r1})) * b.at({r1, o, r0});
      EXPECT_NEAR(fast->at({i, o}), acc, 1e-4);
    }
  }
}

TEST(TrMatrixTest, ShapeErrorsReturnStatus) {
  Tensor a = Tensor::Ones(Shape{2, 3, 2});
  Tensor b = Tensor::Ones(Shape{2, 4, 2});
  EXPECT_FALSE(TrMatrix(a, b, Tensor::Ones(Shape{3, 3})).ok());
  EXPECT_FALSE(TrMatrix(a, Tensor::Ones(Shape{3, 4, 2}),
                        Tensor::Ones(Shape{2, 2}))
                   .ok());
  EXPECT_FALSE(
      TrMatrix(Tensor::Ones(Shape{2, 3}), b, Tensor::Ones(Shape{2, 2})).ok());
}

TEST(TrFormatTest, TrBeatsDenseParamsAtLowRank) {
  // The compression claim behind Eq. 7.
  TrFormat tr({256, 256}, 4);
  EXPECT_LT(tr.ParamCount(), tr.DenseParamCount() / 2);
}

}  // namespace
}  // namespace tn
}  // namespace metalora
