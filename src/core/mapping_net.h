// Parameter-space mapping net (paper §III.B.2).
//
// An MLP mapping the frozen extractor's feature vector to a parameter seed:
//   CP variant: c ∈ R^R        (Eq. 6, the generated diagonal core)
//   TR variant: C ∈ R^{R×R}    (Eq. 7, the generated ring core)
// Seeds are produced as identity + tanh(raw): centered on the identity
// diagonal tensor Λ of Fig. 4, bounded so early training cannot blow up the
// update, and exactly the identity at zero activations.
#ifndef METALORA_CORE_MAPPING_NET_H_
#define METALORA_CORE_MAPPING_NET_H_

#include "common/rng.h"
#include "nn/mlp.h"
#include "nn/module.h"

namespace metalora {
namespace core {

using nn::Variable;

enum class SeedShape {
  kVector,  // c  [N, R]
  kMatrix,  // C  [N, R, R]
};

class MappingNet : public nn::Module {
 public:
  MappingNet(int64_t feature_dim, int64_t hidden, int64_t rank,
             SeedShape seed_shape, Rng& rng);

  /// features [N, feature_dim] -> seed ([N, R] or [N, R, R]).
  Variable Forward(const Variable& features) override;

  SeedShape seed_shape() const { return seed_shape_; }
  int64_t rank() const { return rank_; }

 private:
  int64_t rank_;
  SeedShape seed_shape_;
  nn::Mlp* mlp_;
};

}  // namespace core
}  // namespace metalora

#endif  // METALORA_CORE_MAPPING_NET_H_
