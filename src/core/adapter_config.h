// Configuration shared by every adapter in the PEFT core, plus the adapter
// base class the injector and training loops program against.
#ifndef METALORA_CORE_ADAPTER_CONFIG_H_
#define METALORA_CORE_ADAPTER_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"

namespace metalora {
namespace core {

class ConditioningCache;

using nn::Variable;

/// The adaptation methods compared in the paper's Table I, plus the
/// tensor-adapter extensions (LoTR cross-layer sharing, tensor-train).
enum class AdapterKind {
  kNone,        // "Original": frozen backbone, no adaptation
  kLora,        // static LoRA (matrix) / Conv-LoRA (conv, Eq. 5)
  kMultiLora,   // per-task LoRA branches with task routing
  kMetaLoraCp,  // MetaLoRA, CP format (Eq. 6)
  kMetaLoraTr,  // MetaLoRA, TR format (Eq. 7)
  kMoeLora,     // mixture-of-experts LoRA (MOELoRA, cited as [14]; extension)
  kLotr,        // LoTR: cross-layer shared factors + thin per-layer core
  kMetaLotr,    // LoTR with the per-layer core modulated by a generated seed
  kTt,          // tensor-train factorized adapter (static)
  kMetaTt,      // tensor-train adapter with a generated bond seed
};

/// Stable display name ("Original", "LoRA", "Multi-LoRA", ...).
std::string AdapterKindName(AdapterKind kind);

/// True when `kind` is one of the AdapterKind enumerators. A spec decoded
/// from untrusted bytes can carry any integer; validation must reject it
/// instead of letting a switch fall through to a misleading default.
bool AdapterKindIsKnown(AdapterKind kind);

/// True for the conditioned kinds whose Forward requires SetFeatures
/// (MetaLoRA CP/TR, MoE-LoRA, Meta-LoTR, Meta-TT).
bool AdapterKindNeedsFeatures(AdapterKind kind);


/// How Multi-LoRA combines its branches.
enum class MultiLoraMode {
  /// All branches active with learnable per-branch scaling — the MultiLoRA
  /// baseline of Wang et al. (arXiv:2311.11501) cited by the paper. Needs no
  /// task ids. Default.
  kSum,
  /// Each sample routed to its task's branch using oracle task ids (an
  /// upper bound requiring metadata MetaLoRA does not need; ablation only).
  kOracleRouting,
};

struct AdapterOptions {
  AdapterKind kind = AdapterKind::kLora;
  int64_t rank = 4;
  /// LoRA scaling: the delta is multiplied by alpha / rank.
  float alpha = 8.0f;
  /// Multi-LoRA: number of branches (= tasks for oracle routing).
  int num_tasks = 1;
  /// Multi-LoRA: branch combination rule.
  MultiLoraMode multi_lora_mode = MultiLoraMode::kSum;
  /// Multi-LoRA: if true (default, per the MultiLoRA design) the rank budget
  /// is split across branches — each branch gets max(1, rank / num_tasks) —
  /// so total capacity stays comparable to plain LoRA. If false every branch
  /// gets the full rank (an over-provisioned upper bound).
  bool multi_lora_split_rank = true;
  /// MetaLoRA: dimensionality of the conditioning feature vector.
  int64_t feature_dim = 0;
  /// MetaLoRA: hidden width of the per-adapter mapping net.
  int64_t mapping_hidden = 16;
  /// Seed for adapter parameter init.
  uint64_t seed = 7;
};

/// Validates an AdapterOptions for construction/injection: known kind,
/// rank within (0, 4096], feature_dim/mapping_hidden positive for the
/// conditioned kinds, num_tasks >= 1 for the multi-branch kinds. The error
/// names the offending field. kNone is valid (freeze-only injection).
Status ValidateAdapterOptions(const AdapterOptions& options);

/// Base class of all adapters. An adapter is a Module that owns its frozen
/// base layer as the child "base" and adds a trainable low-rank path.
///
/// Bindings (conditioning features, task ids) are stored per replica: the
/// slot written by SetFeatures/SetTaskIds and read back by Forward (via
/// bound_features()/bound_task_ids()) is selected by the calling thread's
/// RuntimeContext::replica_id(). Single-replica code never notices — slot 0
/// always exists and replica_id defaults to 0 — while data-parallel lanes
/// each bind their own shard's features on the one shared module tree
/// without racing. Size the slots with EnsureReplicaSlots before forking.
class Adapter : public nn::Module {
 public:
  Adapter(std::string name, AdapterOptions options)
      : Module(std::move(name)), options_(std::move(options)) {}

  const AdapterOptions& options() const { return options_; }
  AdapterKind kind() const { return options_.kind; }

  /// Number of trainable parameters added by the adapter (excludes the
  /// frozen base layer).
  virtual int64_t AdapterParamCount() const = 0;

  /// The adapter's conditioning-keyed ΔW/seed cache, when the kind has one
  /// (the MetaLoRA adapters override this); nullptr otherwise. Lets code
  /// that handles adapters polymorphically — the serving registry, stats
  /// aggregation — reach the cache without downcasting per kind.
  virtual ConditioningCache* conditioning_cache() { return nullptr; }

  /// MetaLoRA / MoE adapters: binds the conditioning features
  /// [N, feature_dim] for the next Forward on the calling replica's slot.
  /// Virtual so adapters may add validation; the base stores the binding.
  virtual void SetFeatures(const nn::Variable& features);

  /// Multi-LoRA adapters: binds per-sample task ids for the next Forward
  /// on the calling replica's slot.
  virtual void SetTaskIds(const std::vector<int64_t>& task_ids);

  /// Grows the binding-slot array to cover replica ids [0, n). Slot 0
  /// always exists. Call from the coordinator before forking replica
  /// lanes; must not run concurrently with lane execution. Existing
  /// bindings (including slot 0's) are preserved.
  void EnsureReplicaSlots(int n);

 protected:
  /// The features bound on the calling replica's slot; undefined Variable
  /// when SetFeatures has not been called for this replica.
  const nn::Variable& bound_features() const;

  /// The task ids bound on the calling replica's slot; empty when
  /// SetTaskIds has not been called for this replica.
  const std::vector<int64_t>& bound_task_ids() const;

  AdapterOptions options_;

 private:
  struct ReplicaBinding {
    nn::Variable features;
    std::vector<int64_t> task_ids;
  };
  const ReplicaBinding& CurrentSlot() const;
  ReplicaBinding& CurrentSlot();

  std::vector<ReplicaBinding> bindings_ = std::vector<ReplicaBinding>(1);
};

}  // namespace core
}  // namespace metalora

#endif  // METALORA_CORE_ADAPTER_CONFIG_H_
