#include "nn/norm.h"

#include "autograd/ops.h"

namespace metalora {
namespace nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float momentum, float eps)
    : Module("BatchNorm2d"),
      channels_(channels),
      momentum_(momentum),
      eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones(Shape{channels_}));
  beta_ = RegisterParameter("beta", Tensor::Zeros(Shape{channels_}));
  running_mean_ = &RegisterBuffer("running_mean", Tensor::Zeros(Shape{channels_}));
  running_var_ = &RegisterBuffer("running_var", Tensor::Ones(Shape{channels_}));
}

Variable BatchNorm2d::Forward(const Variable& x) {
  return autograd::BatchNorm2d(x, gamma_, beta_, *running_mean_, *running_var_,
                               training(), momentum_, eps_);
}

LayerNorm::LayerNorm(int64_t features, float eps)
    : Module("LayerNorm"), features_(features), eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones(Shape{features_}));
  beta_ = RegisterParameter("beta", Tensor::Zeros(Shape{features_}));
}

Variable LayerNorm::Forward(const Variable& x) {
  return autograd::LayerNorm(x, gamma_, beta_, eps_);
}

}  // namespace nn
}  // namespace metalora
