#include "autograd/ops.h"
#include "tensor/matmul.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace autograd {

Variable Matmul(const Variable& a, const Variable& b) {
  Tensor out = metalora::Matmul(a.value(), b.value());
  Tensor av = a.value(), bv = b.value();
  return MakeOpResult(
      std::move(out), {a, b}, "Matmul",
      [av, bv](const Tensor& g) -> std::vector<Tensor> {
        // dA = g · Bᵀ ; dB = Aᵀ · g.
        return {MatmulTransB(g, bv), MatmulTransA(av, g)};
      });
}

Variable Linear(const Variable& x, const Variable& weight,
                const Variable& bias) {
  ML_CHECK_EQ(x.rank(), 2);
  ML_CHECK_EQ(weight.rank(), 2);
  ML_CHECK_EQ(x.dim(1), weight.dim(1))
      << "Linear: x " << x.shape().ToString() << " vs W "
      << weight.shape().ToString();
  // y = x · Wᵀ (+ b).
  Tensor out = MatmulTransB(x.value(), weight.value());
  const bool has_bias = bias.defined();
  if (has_bias) {
    ML_CHECK_EQ(bias.rank(), 1);
    ML_CHECK_EQ(bias.dim(0), weight.dim(0));
    out = metalora::AddRowBroadcast(out, bias.value());
  }
  Tensor xv = x.value(), wv = weight.value();
  std::vector<Variable> inputs = has_bias
                                     ? std::vector<Variable>{x, weight, bias}
                                     : std::vector<Variable>{x, weight};
  return MakeOpResult(
      std::move(out), std::move(inputs), "Linear",
      [xv, wv, has_bias](const Tensor& g) -> std::vector<Tensor> {
        // dx = g · W ; dW = gᵀ · x ; db = Σ_rows g.
        std::vector<Tensor> grads;
        grads.push_back(metalora::Matmul(g, wv));
        grads.push_back(MatmulTransA(g, xv));
        if (has_bias) grads.push_back(SumAxis(g, 0));
        return grads;
      });
}

namespace {

// C[n] = A[n] · B[n] for 2-D blocks, optionally transposing either operand.
Tensor BatchedMatmulRaw(const Tensor& a, const Tensor& b, bool trans_a,
                        bool trans_b) {
  const int64_t batch = a.dim(0);
  const int64_t ar = a.dim(1), ac = a.dim(2);
  const int64_t br = b.dim(1), bc = b.dim(2);
  const int64_t n = trans_a ? ac : ar;
  const int64_t k = trans_a ? ar : ac;
  const int64_t k2 = trans_b ? bc : br;
  const int64_t m = trans_b ? br : bc;
  ML_CHECK_EQ(k, k2);
  ML_CHECK_EQ(b.dim(0), batch);
  Tensor out{Shape{batch, n, m}};
  for (int64_t s = 0; s < batch; ++s) {
    const float* pa = a.data() + s * ar * ac;
    const float* pb = b.data() + s * br * bc;
    float* pc = out.data() + s * n * m;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? pa[p * ac + i] : pa[i * ac + p];
        if (av == 0.0f) continue;
        if (trans_b) {
          for (int64_t j = 0; j < m; ++j) pc[i * m + j] += av * pb[j * bc + p];
        } else {
          const float* brow = pb + p * bc;
          for (int64_t j = 0; j < m; ++j) pc[i * m + j] += av * brow[j];
        }
      }
    }
  }
  return out;
}

}  // namespace

Variable BatchedMatmul(const Variable& a, const Variable& b) {
  ML_CHECK_EQ(a.rank(), 3);
  ML_CHECK_EQ(b.rank(), 3);
  ML_CHECK_EQ(a.dim(0), b.dim(0));
  ML_CHECK_EQ(a.dim(2), b.dim(1));
  Tensor out = BatchedMatmulRaw(a.value(), b.value(), false, false);
  Tensor av = a.value(), bv = b.value();
  return MakeOpResult(
      std::move(out), {a, b}, "BatchedMatmul",
      [av, bv](const Tensor& g) -> std::vector<Tensor> {
        // dA[n] = g[n] · B[n]ᵀ ; dB[n] = A[n]ᵀ · g[n].
        return {BatchedMatmulRaw(g, bv, false, true),
                BatchedMatmulRaw(av, g, true, false)};
      });
}

Variable PerSamplePointwiseConv(const Variable& x, const Variable& w) {
  ML_CHECK_EQ(x.rank(), 4);
  ML_CHECK_EQ(w.rank(), 3);
  const int64_t n = x.dim(0), q = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t o = w.dim(1);
  ML_CHECK_EQ(w.dim(0), n);
  ML_CHECK_EQ(w.dim(2), q);
  const int64_t spatial = h * wd;

  // y[n] = w[n] [O,Q] · x[n] [Q, S]  (per-sample matmul over flattened space)
  Tensor out{Shape{n, o, h, wd}};
  {
    const float* px = x.value().data();
    const float* pw = w.value().data();
    float* py = out.data();
    for (int64_t s = 0; s < n; ++s) {
      const float* xs = px + s * q * spatial;
      const float* ws = pw + s * o * q;
      float* ys = py + s * o * spatial;
      MatmulAccumulateRaw(ws, xs, ys, o, q, spatial);
    }
  }
  Tensor xv = x.value(), wv = w.value();
  return MakeOpResult(
      std::move(out), {x, w}, "PerSamplePointwiseConv",
      [xv, wv, n, q, o, spatial](const Tensor& g) -> std::vector<Tensor> {
        Tensor gx{xv.shape()};
        Tensor gw{wv.shape()};
        const float* pg = g.data();
        const float* px = xv.data();
        const float* pw = wv.data();
        float* pgx = gx.data();
        float* pgw = gw.data();
        for (int64_t s = 0; s < n; ++s) {
          const float* gs = pg + s * o * spatial;  // [O, S]
          const float* xs = px + s * q * spatial;  // [Q, S]
          const float* ws = pw + s * o * q;        // [O, Q]
          float* gxs = pgx + s * q * spatial;      // [Q, S]
          float* gws = pgw + s * o * q;            // [O, Q]
          // gx = wᵀ · g : [Q,O]·[O,S]
          for (int64_t oc = 0; oc < o; ++oc) {
            const float* grow = gs + oc * spatial;
            for (int64_t qc = 0; qc < q; ++qc) {
              const float wvv = ws[oc * q + qc];
              if (wvv != 0.0f) {
                float* gxrow = gxs + qc * spatial;
                for (int64_t k = 0; k < spatial; ++k)
                  gxrow[k] += wvv * grow[k];
              }
              // gw[o,q] = Σ_s g[o,s] x[q,s]
              const float* xrow = xs + qc * spatial;
              float acc = 0.0f;
              for (int64_t k = 0; k < spatial; ++k) acc += grow[k] * xrow[k];
              gws[oc * q + qc] += acc;
            }
          }
        }
        return {gx, gw};
      });
}

}  // namespace autograd
}  // namespace metalora
