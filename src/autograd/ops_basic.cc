#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace autograd {

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = metalora::Add(a.value(), b.value());
  return MakeOpResult(std::move(out), {a, b}, "Add",
                      [](const Tensor& g) -> std::vector<Tensor> {
                        return {g, g};
                      });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = metalora::Sub(a.value(), b.value());
  return MakeOpResult(std::move(out), {a, b}, "Sub",
                      [](const Tensor& g) -> std::vector<Tensor> {
                        return {g, metalora::Scale(g, -1.0f)};
                      });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = metalora::Mul(a.value(), b.value());
  Tensor av = a.value(), bv = b.value();
  return MakeOpResult(std::move(out), {a, b}, "Mul",
                      [av, bv](const Tensor& g) -> std::vector<Tensor> {
                        return {metalora::Mul(g, bv), metalora::Mul(g, av)};
                      });
}

Variable Scale(const Variable& a, float s) {
  Tensor out = metalora::Scale(a.value(), s);
  return MakeOpResult(std::move(out), {a}, "Scale",
                      [s](const Tensor& g) -> std::vector<Tensor> {
                        return {metalora::Scale(g, s)};
                      });
}

Variable AddScalar(const Variable& a, float s) {
  Tensor out = metalora::AddScalar(a.value(), s);
  return MakeOpResult(std::move(out), {a}, "AddScalar",
                      [](const Tensor& g) -> std::vector<Tensor> {
                        return {g};
                      });
}

Variable Neg(const Variable& a) { return Scale(a, -1.0f); }

Variable AddRowBroadcast(const Variable& a, const Variable& bias) {
  Tensor out = metalora::AddRowBroadcast(a.value(), bias.value());
  return MakeOpResult(std::move(out), {a, bias}, "AddRowBroadcast",
                      [](const Tensor& g) -> std::vector<Tensor> {
                        return {g, SumAxis(g, 0)};
                      });
}

Variable MulRowBroadcast(const Variable& a, const Variable& row) {
  ML_CHECK_EQ(a.rank(), 2);
  ML_CHECK_EQ(row.rank(), 1);
  ML_CHECK_EQ(a.dim(1), row.dim(0));
  const int64_t n = a.dim(0), c = a.dim(1);
  Tensor out{a.shape()};
  {
    const float* pa = a.value().data();
    const float* pr = row.value().data();
    float* po = out.data();
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < c; ++j) po[i * c + j] = pa[i * c + j] * pr[j];
  }
  Tensor av = a.value(), rv = row.value();
  return MakeOpResult(
      std::move(out), {a, row}, "MulRowBroadcast",
      [av, rv, n, c](const Tensor& g) -> std::vector<Tensor> {
        Tensor ga{av.shape()};
        Tensor gr{rv.shape()};
        const float* pg = g.data();
        const float* pa = av.data();
        const float* pr = rv.data();
        float* pga = ga.data();
        float* pgr = gr.data();
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t j = 0; j < c; ++j) {
            pga[i * c + j] = pg[i * c + j] * pr[j];
            pgr[j] += pg[i * c + j] * pa[i * c + j];
          }
        }
        return {ga, gr};
      });
}

Variable ScaleChannels(const Variable& a, const Variable& s) {
  ML_CHECK_EQ(a.rank(), 4);
  ML_CHECK_EQ(s.rank(), 2);
  ML_CHECK_EQ(a.dim(0), s.dim(0));
  ML_CHECK_EQ(a.dim(1), s.dim(1));
  const int64_t n = a.dim(0), c = a.dim(1), spatial = a.dim(2) * a.dim(3);
  Tensor out{a.shape()};
  {
    const float* pa = a.value().data();
    const float* ps = s.value().data();
    float* po = out.data();
    for (int64_t i = 0; i < n * c; ++i) {
      const float sv = ps[i];
      const float* plane = pa + i * spatial;
      float* oplane = po + i * spatial;
      for (int64_t k = 0; k < spatial; ++k) oplane[k] = plane[k] * sv;
    }
  }
  Tensor av = a.value(), sv = s.value();
  return MakeOpResult(
      std::move(out), {a, s}, "ScaleChannels",
      [av, sv, n, c, spatial](const Tensor& g) -> std::vector<Tensor> {
        Tensor ga{av.shape()};
        Tensor gs{sv.shape()};
        const float* pg = g.data();
        const float* pa = av.data();
        const float* ps = sv.data();
        float* pga = ga.data();
        float* pgs = gs.data();
        for (int64_t i = 0; i < n * c; ++i) {
          const float scale = ps[i];
          const float* gplane = pg + i * spatial;
          const float* aplane = pa + i * spatial;
          float* gaplane = pga + i * spatial;
          float acc = 0.0f;
          for (int64_t k = 0; k < spatial; ++k) {
            gaplane[k] = gplane[k] * scale;
            acc += gplane[k] * aplane[k];
          }
          pgs[i] = acc;
        }
        return {ga, gs};
      });
}

Variable ScaleRows(const Variable& a, const Variable& s) {
  ML_CHECK_GE(a.rank(), 1);
  ML_CHECK_EQ(s.rank(), 1);
  ML_CHECK_EQ(a.dim(0), s.dim(0));
  const int64_t n = a.dim(0);
  const int64_t rest = a.numel() / std::max<int64_t>(n, 1);
  Tensor out{a.shape()};
  {
    const float* pa = a.value().data();
    const float* ps = s.value().data();
    float* po = out.data();
    for (int64_t i = 0; i < n; ++i) {
      const float sv = ps[i];
      for (int64_t k = 0; k < rest; ++k)
        po[i * rest + k] = pa[i * rest + k] * sv;
    }
  }
  Tensor av = a.value(), sv = s.value();
  return MakeOpResult(
      std::move(out), {a, s}, "ScaleRows",
      [av, sv, n, rest](const Tensor& g) -> std::vector<Tensor> {
        Tensor ga{av.shape()};
        Tensor gs{sv.shape()};
        const float* pg = g.data();
        const float* pa = av.data();
        const float* ps = sv.data();
        float* pga = ga.data();
        float* pgs = gs.data();
        for (int64_t i = 0; i < n; ++i) {
          const float scale = ps[i];
          float acc = 0.0f;
          for (int64_t k = 0; k < rest; ++k) {
            pga[i * rest + k] = pg[i * rest + k] * scale;
            acc += pg[i * rest + k] * pa[i * rest + k];
          }
          pgs[i] = acc;
        }
        return {ga, gs};
      });
}

Variable MulScalarVar(const Variable& a, const Variable& s) {
  ML_CHECK_EQ(s.numel(), 1);
  const float sv = s.value().flat(0);
  Tensor out = metalora::Scale(a.value(), sv);
  Tensor av = a.value();
  Shape s_shape = s.shape();
  return MakeOpResult(
      std::move(out), {a, s}, "MulScalarVar",
      [av, sv, s_shape](const Tensor& g) -> std::vector<Tensor> {
        Tensor gs{s_shape};
        double acc = 0;
        const float* pg = g.data();
        const float* pa = av.data();
        for (int64_t i = 0, n = g.numel(); i < n; ++i)
          acc += static_cast<double>(pg[i]) * pa[i];
        gs.flat(0) = static_cast<float>(acc);
        return {metalora::Scale(g, sv), gs};
      });
}

Variable RepeatRowsInterleaved(const Variable& a, int64_t k) {
  ML_CHECK_GE(a.rank(), 1);
  ML_CHECK_GT(k, 0);
  if (k == 1) return a;
  const int64_t n = a.dim(0);
  const int64_t rest = a.numel() / std::max<int64_t>(n, 1);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[0] = n * k;
  Tensor out{Shape(out_dims)};
  {
    const float* pa = a.value().data();
    float* po = out.data();
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < k; ++j) {
        std::copy(pa + i * rest, pa + (i + 1) * rest,
                  po + (i * k + j) * rest);
      }
    }
  }
  Shape in_shape = a.shape();
  return MakeOpResult(
      std::move(out), {a}, "RepeatRowsInterleaved",
      [in_shape, n, k, rest](const Tensor& g) -> std::vector<Tensor> {
        Tensor ga{in_shape};
        const float* pg = g.data();
        float* pga = ga.data();
        for (int64_t i = 0; i < n; ++i) {
          float* dst = pga + i * rest;
          for (int64_t j = 0; j < k; ++j) {
            const float* src = pg + (i * k + j) * rest;
            for (int64_t t = 0; t < rest; ++t) dst[t] += src[t];
          }
        }
        return {ga};
      });
}

Variable Relu(const Variable& a) {
  Tensor out = Map(a.value(), [](float v) { return v > 0 ? v : 0.0f; });
  Tensor av = a.value();
  return MakeOpResult(std::move(out), {a}, "Relu",
                      [av](const Tensor& g) -> std::vector<Tensor> {
                        return {Zip(g, av, [](float gv, float x) {
                          return x > 0 ? gv : 0.0f;
                        })};
                      });
}

namespace {
// tanh-approximation GELU and its derivative.
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

inline float GeluFwd(float x) {
  const float t = std::tanh(kGeluC * (x + kGeluA * x * x * x));
  return 0.5f * x * (1.0f + t);
}

inline float GeluBwd(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  const float t = std::tanh(u);
  const float sech2 = 1.0f - t * t;
  const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * du;
}
}  // namespace

Variable Gelu(const Variable& a) {
  Tensor out = Map(a.value(), GeluFwd);
  Tensor av = a.value();
  return MakeOpResult(std::move(out), {a}, "Gelu",
                      [av](const Tensor& g) -> std::vector<Tensor> {
                        return {Zip(g, av, [](float gv, float x) {
                          return gv * GeluBwd(x);
                        })};
                      });
}

Variable Tanh(const Variable& a) {
  Tensor out = Map(a.value(), [](float v) { return std::tanh(v); });
  Tensor ov = out;  // derivative uses the output
  return MakeOpResult(std::move(out), {a}, "Tanh",
                      [ov](const Tensor& g) -> std::vector<Tensor> {
                        return {Zip(g, ov, [](float gv, float y) {
                          return gv * (1.0f - y * y);
                        })};
                      });
}

Variable Sigmoid(const Variable& a) {
  Tensor out =
      Map(a.value(), [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  Tensor ov = out;
  return MakeOpResult(std::move(out), {a}, "Sigmoid",
                      [ov](const Tensor& g) -> std::vector<Tensor> {
                        return {Zip(g, ov, [](float gv, float y) {
                          return gv * y * (1.0f - y);
                        })};
                      });
}

Variable Square(const Variable& a) {
  Tensor out = Map(a.value(), [](float v) { return v * v; });
  Tensor av = a.value();
  return MakeOpResult(std::move(out), {a}, "Square",
                      [av](const Tensor& g) -> std::vector<Tensor> {
                        return {Zip(g, av, [](float gv, float x) {
                          return gv * 2.0f * x;
                        })};
                      });
}

Variable Exp(const Variable& a) {
  Tensor out = Map(a.value(), [](float v) { return std::exp(v); });
  Tensor ov = out;
  return MakeOpResult(std::move(out), {a}, "Exp",
                      [ov](const Tensor& g) -> std::vector<Tensor> {
                        return {metalora::Mul(g, ov)};
                      });
}

Variable Dropout(const Variable& a, float p, bool training, Rng& rng) {
  ML_CHECK(p >= 0.0f && p < 1.0f) << "dropout probability out of range";
  if (!training || p == 0.0f) return a;
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  Tensor mask{a.shape()};
  float* pm = mask.data();
  for (int64_t i = 0, n = mask.numel(); i < n; ++i) {
    pm[i] = rng.Bernoulli(keep) ? inv_keep : 0.0f;
  }
  Tensor out = metalora::Mul(a.value(), mask);
  return MakeOpResult(std::move(out), {a}, "Dropout",
                      [mask](const Tensor& g) -> std::vector<Tensor> {
                        return {metalora::Mul(g, mask)};
                      });
}

Variable SumAll(const Variable& a) {
  Tensor out = Tensor::Scalar(static_cast<float>(metalora::SumAll(a.value())));
  Shape in_shape = a.shape();
  return MakeOpResult(std::move(out), {a}, "SumAll",
                      [in_shape](const Tensor& g) -> std::vector<Tensor> {
                        return {Tensor::Full(in_shape, g.flat(0))};
                      });
}

Variable MeanAll(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  Tensor out = Tensor::Scalar(static_cast<float>(metalora::MeanAll(a.value())));
  Shape in_shape = a.shape();
  return MakeOpResult(std::move(out), {a}, "MeanAll",
                      [in_shape, inv](const Tensor& g) -> std::vector<Tensor> {
                        return {Tensor::Full(in_shape, g.flat(0) * inv)};
                      });
}

}  // namespace autograd
}  // namespace metalora
