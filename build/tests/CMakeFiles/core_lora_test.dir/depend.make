# Empty dependencies file for core_lora_test.
# This may be replaced when dependencies are built.
