
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tn/contraction.cc" "src/CMakeFiles/ml_tn.dir/tn/contraction.cc.o" "gcc" "src/CMakeFiles/ml_tn.dir/tn/contraction.cc.o.d"
  "/root/repo/src/tn/cp_als.cc" "src/CMakeFiles/ml_tn.dir/tn/cp_als.cc.o" "gcc" "src/CMakeFiles/ml_tn.dir/tn/cp_als.cc.o.d"
  "/root/repo/src/tn/cp_format.cc" "src/CMakeFiles/ml_tn.dir/tn/cp_format.cc.o" "gcc" "src/CMakeFiles/ml_tn.dir/tn/cp_format.cc.o.d"
  "/root/repo/src/tn/dummy_tensor.cc" "src/CMakeFiles/ml_tn.dir/tn/dummy_tensor.cc.o" "gcc" "src/CMakeFiles/ml_tn.dir/tn/dummy_tensor.cc.o.d"
  "/root/repo/src/tn/tn_cost.cc" "src/CMakeFiles/ml_tn.dir/tn/tn_cost.cc.o" "gcc" "src/CMakeFiles/ml_tn.dir/tn/tn_cost.cc.o.d"
  "/root/repo/src/tn/tr_format.cc" "src/CMakeFiles/ml_tn.dir/tn/tr_format.cc.o" "gcc" "src/CMakeFiles/ml_tn.dir/tn/tr_format.cc.o.d"
  "/root/repo/src/tn/tucker_format.cc" "src/CMakeFiles/ml_tn.dir/tn/tucker_format.cc.o" "gcc" "src/CMakeFiles/ml_tn.dir/tn/tucker_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ml_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
