#include "nn/attention.h"

#include <cmath>

#include "autograd/ops.h"

namespace metalora {
namespace nn {

namespace {

// Applies a named Linear child to the trailing dim of a [N, S, D_in] input.
Variable ApplyLinear3D(Module* parent, const std::string& name,
                       const Variable& x) {
  const int64_t n = x.dim(0), s = x.dim(1), d = x.dim(2);
  Variable flat = autograd::Reshape(x, Shape{n * s, d});
  Variable out = parent->Child(name)->Forward(flat);
  return autograd::Reshape(out, Shape{n, s, out.dim(1)});
}

// [N, S, D] -> [N*H, S, Dh] with heads split from the feature dim.
Variable SplitHeads(const Variable& x, int heads, int64_t head_dim) {
  const int64_t n = x.dim(0), s = x.dim(1);
  Variable r = autograd::Reshape(x, Shape{n, s, heads, head_dim});
  r = autograd::Permute(r, {0, 2, 1, 3});  // [N, H, S, Dh]
  return autograd::Reshape(r, Shape{n * heads, s, head_dim});
}

// [N*H, S, Dh] -> [N, S, D].
Variable MergeHeads(const Variable& x, int64_t n, int heads, int64_t head_dim) {
  const int64_t s = x.dim(1);
  Variable r = autograd::Reshape(x, Shape{n, heads, s, head_dim});
  r = autograd::Permute(r, {0, 2, 1, 3});  // [N, S, H, Dh]
  return autograd::Reshape(r, Shape{n, s, heads * head_dim});
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int num_heads,
                                               Rng& rng)
    : Module("MultiHeadSelfAttention"),
      dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      scale_(1.0f / std::sqrt(static_cast<float>(dim / num_heads))) {
  ML_CHECK_GT(num_heads, 0);
  ML_CHECK_EQ(dim % num_heads, 0) << "dim must be divisible by num_heads";
  RegisterModule("q_proj", std::make_unique<Linear>(dim, dim, true, rng));
  RegisterModule("k_proj", std::make_unique<Linear>(dim, dim, true, rng));
  RegisterModule("v_proj", std::make_unique<Linear>(dim, dim, true, rng));
  RegisterModule("out_proj", std::make_unique<Linear>(dim, dim, true, rng));
}

Variable MultiHeadSelfAttention::Forward(const Variable& x) {
  ML_CHECK_EQ(x.rank(), 3);
  ML_CHECK_EQ(x.dim(2), dim_);
  const int64_t n = x.dim(0);

  Variable q = SplitHeads(ApplyLinear3D(this, "q_proj", x), num_heads_, head_dim_);
  Variable k = SplitHeads(ApplyLinear3D(this, "k_proj", x), num_heads_, head_dim_);
  Variable v = SplitHeads(ApplyLinear3D(this, "v_proj", x), num_heads_, head_dim_);

  // scores[b, i, j] = (q_i · k_j) / sqrt(Dh) for each of the N*H blocks.
  Variable kt = autograd::Permute(k, {0, 2, 1});        // [N*H, Dh, S]
  Variable scores = autograd::BatchedMatmul(q, kt);     // [N*H, S, S]
  scores = autograd::Scale(scores, scale_);
  Variable attn = autograd::SoftmaxLastDim(scores);     // rows sum to 1
  Variable ctx = autograd::BatchedMatmul(attn, v);      // [N*H, S, Dh]

  Variable merged = MergeHeads(ctx, n, num_heads_, head_dim_);
  return ApplyLinear3D(this, "out_proj", merged);
}

}  // namespace nn
}  // namespace metalora
