#include <utility>
#include <vector>

#include "autograd/op.h"
#include "autograd/ops.h"
#include "tensor/gemm.h"
#include "tensor/lowp.h"
#include "tensor/matmul.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace autograd {

namespace {

// Resolves the forward-GEMM precision for a facade. Only the forward
// facades consult the policy; every Backward() below runs fp32
// unconditionally (the policy is no-grad-only anyway — PrecisionFor
// returns fp32 while gradients are recorded). Facades whose operand
// layout can't use the int8 prepacked form (no x·Wᵀ frozen weight)
// downgrade int8 to bf16 here.
OpPrecision ForwardGemmPrecision(RuntimeContext& ctx, bool int8_capable) {
  OpPrecision p = ctx.PrecisionFor(OpCategory::kGemm);
  if (p == OpPrecision::kInt8 && !int8_capable) p = OpPrecision::kBf16;
  return p;
}

class MatmulOp final : public Op {
 public:
  MatmulOp(Tensor a, Tensor b)
      : Op("Matmul"), a_(Save(std::move(a))), b_(Save(std::move(b))) {}

  std::vector<Tensor> Backward(RuntimeContext& ctx, const Tensor& g) override {
    // dA = g · Bᵀ ; dB = Aᵀ · g. Both kernels overwrite their output.
    const Tensor& av = a_.get();
    const Tensor& bv = b_.get();
    Tensor da = ctx.AllocBackwardUninit(av.shape());
    MatmulTransBInto(g, bv, &da);
    Tensor db = ctx.AllocBackwardUninit(bv.shape());
    MatmulTransAInto(av, g, &db);
    return {da, db};
  }

 private:
  SavedTensor a_, b_;
};

class LinearOp final : public Op {
 public:
  LinearOp(Tensor x, Tensor w, bool has_bias)
      : Op("Linear"),
        x_(Save(std::move(x))),
        w_(Save(std::move(w))),
        has_bias_(has_bias) {}

  std::vector<Tensor> Backward(RuntimeContext& ctx, const Tensor& g) override {
    // dx = g · W ; dW = gᵀ · x ; db = Σ_rows g. MatmulInto accumulates, so
    // dx uses the zeroed variant; the others overwrite.
    std::vector<Tensor> grads;
    const Tensor& xv = x_.get();
    const Tensor& wv = w_.get();
    Tensor dx = ctx.AllocBackward(xv.shape());
    MatmulInto(g, wv, &dx);
    grads.push_back(std::move(dx));
    Tensor dw = ctx.AllocBackwardUninit(wv.shape());
    MatmulTransAInto(g, xv, &dw);
    grads.push_back(std::move(dw));
    if (has_bias_) {
      Tensor db = ctx.AllocBackwardUninit(Shape{g.dim(1)});
      SumAxisInto(g, 0, &db);
      grads.push_back(std::move(db));
    }
    return grads;
  }

 private:
  SavedTensor x_, w_;
  bool has_bias_;
};

// C[n] = A[n] · B[n] for 2-D blocks, optionally transposing either operand.
// `out` must be a pre-zeroed [batch, n, m] tensor.
void BatchedMatmulRawInto(const Tensor& a, const Tensor& b, bool trans_a,
                          bool trans_b, Tensor* out) {
  const int64_t batch = a.dim(0);
  const int64_t ar = a.dim(1), ac = a.dim(2);
  const int64_t br = b.dim(1), bc = b.dim(2);
  const int64_t n = trans_a ? ac : ar;
  const int64_t k = trans_a ? ar : ac;
  const int64_t k2 = trans_b ? bc : br;
  const int64_t m = trans_b ? br : bc;
  ML_CHECK_EQ(k, k2);
  ML_CHECK_EQ(b.dim(0), batch);
  ML_CHECK((out->shape() == Shape{batch, n, m}));
  // Each 2-D block goes through the packed engine; the stored-transposed
  // operand layouts ([k,n] / [m,k]) are exactly the engine's trans flags.
  for (int64_t s = 0; s < batch; ++s) {
    GemmPacked(a.data() + s * ar * ac, trans_a, b.data() + s * br * bc,
               trans_b, out->data() + s * n * m, n, k, m,
               /*accumulate=*/true);
  }
}

class BatchedMatmulOp final : public Op {
 public:
  BatchedMatmulOp(Tensor a, Tensor b)
      : Op("BatchedMatmul"), a_(Save(std::move(a))), b_(Save(std::move(b))) {}

  std::vector<Tensor> Backward(RuntimeContext& ctx, const Tensor& g) override {
    // dA[n] = g[n] · B[n]ᵀ ; dB[n] = A[n]ᵀ · g[n]. The batched kernel
    // accumulates, so both outputs need the zeroed variant.
    const Tensor& av = a_.get();
    const Tensor& bv = b_.get();
    Tensor da = ctx.AllocBackward(av.shape());
    BatchedMatmulRawInto(g, bv, false, true, &da);
    Tensor db = ctx.AllocBackward(bv.shape());
    BatchedMatmulRawInto(av, g, true, false, &db);
    return {da, db};
  }

 private:
  SavedTensor a_, b_;
};

class PerSamplePointwiseConvOp final : public Op {
 public:
  PerSamplePointwiseConvOp(Tensor x, Tensor w)
      : Op("PerSamplePointwiseConv"),
        x_(Save(std::move(x))),
        w_(Save(std::move(w))) {}

  std::vector<Tensor> Backward(RuntimeContext& ctx, const Tensor& g) override {
    const Tensor& xv = x_.get();
    const Tensor& wv = w_.get();
    const int64_t n = xv.dim(0), q = xv.dim(1),
                  spatial = xv.dim(2) * xv.dim(3);
    const int64_t o = wv.dim(1);
    // Both per-sample GEMMs below accumulate: zeroed buffers required.
    Tensor gx = ctx.AllocBackward(xv.shape());
    Tensor gw = ctx.AllocBackward(wv.shape());
    const float* pg = g.data();
    const float* px = xv.data();
    const float* pw = wv.data();
    float* pgx = gx.data();
    float* pgw = gw.data();
    for (int64_t s = 0; s < n; ++s) {
      const float* gs = pg + s * o * spatial;  // [O, S]
      const float* xs = px + s * q * spatial;  // [Q, S]
      const float* ws = pw + s * o * q;        // [O, Q]
      float* gxs = pgx + s * q * spatial;      // [Q, S]
      float* gws = pgw + s * o * q;            // [O, Q]
      // gx [Q,S] = wᵀ (w stored [O,Q]) · g [O,S].
      GemmPacked(ws, /*trans_a=*/true, gs, /*trans_b=*/false, gxs, q, o,
                 spatial, /*accumulate=*/true);
      // gw [O,Q] = g [O,S] · xᵀ (x stored [Q,S]).
      GemmPacked(gs, /*trans_a=*/false, xs, /*trans_b=*/true, gws, o, spatial,
                 q, /*accumulate=*/true);
    }
    return {gx, gw};
  }

 private:
  SavedTensor x_, w_;
};

}  // namespace

Variable Matmul(const Variable& a, const Variable& b) {
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "Matmul");
  // Plain A·B has no frozen x·Wᵀ weight, so int8 downgrades to bf16.
  const OpPrecision prec = ForwardGemmPrecision(ctx, /*int8_capable=*/false);
  ctx.RecordGemmDispatch(prec);
  Tensor out = ctx.AllocResult(Shape{a.dim(0), b.dim(1)});
  if (prec == OpPrecision::kBf16) {
    GemmPackedBf16(a.value().data(), false, b.value().data(), false,
                   out.data(), a.dim(0), a.dim(1), b.dim(1),
                   /*accumulate=*/true);
  } else {
    MatmulInto(a.value(), b.value(), &out);
  }
  prof.set_output(out);
  if (TraceRecorder* rec = ctx.trace_recorder()) {
    rec->RecordMatmul(a.value(), b.value(), out, prec);
  }
  return MakeOpResult<MatmulOp>(std::move(out), {a, b}, a.value(), b.value());
}

Variable Linear(const Variable& x, const Variable& weight,
                const Variable& bias) {
  ML_CHECK_EQ(x.rank(), 2);
  ML_CHECK_EQ(weight.rank(), 2);
  ML_CHECK_EQ(x.dim(1), weight.dim(1))
      << "Linear: x " << x.shape().ToString() << " vs W "
      << weight.shape().ToString();
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "Linear");
  // y = x · Wᵀ (+ b). Linear is the primary low-precision site: its
  // weight layout is exactly what the quantized-shadow registry packs, so
  // int8/bf16 resolve to pack-once prepacked forms when the weight was
  // registered (adapter publish / precision eval), and bf16 falls back to
  // dynamic packing otherwise. Bias addition stays fp32 (epilogue).
  const int64_t rows = x.dim(0);
  const int64_t in = weight.dim(1);
  const int64_t out_ch = weight.dim(0);
  const OpPrecision req_prec = ForwardGemmPrecision(ctx, /*int8_capable=*/true);
  OpPrecision prec = req_prec;
  Tensor out = ctx.AllocResultUninit(Shape{rows, out_ch});
  if (prec == OpPrecision::kInt8) {
    const auto shadow = lowp::FindInt8Shadow(weight.value().data(), in, out_ch);
    if (shadow != nullptr) {
      GemmInt8Prepacked(x.value().data(), *shadow, out.data(), rows,
                        /*accumulate=*/false);
    } else {
      prec = OpPrecision::kBf16;  // no quantized shadow: bf16 fallback
    }
  }
  if (prec == OpPrecision::kBf16) {
    const auto shadow = lowp::FindBf16Shadow(weight.value().data(), in, out_ch);
    if (shadow != nullptr) {
      GemmBf16Prepacked(x.value().data(), *shadow, out.data(), rows,
                        /*accumulate=*/false);
    } else {
      GemmPackedBf16(x.value().data(), false, weight.value().data(), true,
                     out.data(), rows, in, out_ch, /*accumulate=*/false);
    }
  } else if (prec == OpPrecision::kFp32) {
    MatmulTransBInto(x.value(), weight.value(), &out);
  }
  ctx.RecordGemmDispatch(prec);
  const bool has_bias = bias.defined();
  if (has_bias) {
    ML_CHECK_EQ(bias.rank(), 1);
    ML_CHECK_EQ(bias.dim(0), weight.dim(0));
    const float* pb = bias.value().data();
    float* po = out.data();
    const int64_t n = out.dim(0), c = out.dim(1);
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < c; ++j) po[i * c + j] += pb[j];
  }
  prof.set_output(out);
  if (TraceRecorder* rec = ctx.trace_recorder()) {
    // Pass the requested precision; the recorder replays this facade's
    // shadow resolution (including the int8 -> bf16 downgrade) itself.
    rec->RecordLinear(x.value(), weight.value(),
                      has_bias ? &bias.value() : nullptr, out, req_prec);
  }
  std::vector<Variable> inputs = has_bias
                                     ? std::vector<Variable>{x, weight, bias}
                                     : std::vector<Variable>{x, weight};
  return MakeOpResult<LinearOp>(std::move(out), std::move(inputs), x.value(),
                                weight.value(), has_bias);
}

Variable BatchedMatmul(const Variable& a, const Variable& b) {
  ML_CHECK_EQ(a.rank(), 3);
  ML_CHECK_EQ(b.rank(), 3);
  ML_CHECK_EQ(a.dim(0), b.dim(0));
  ML_CHECK_EQ(a.dim(2), b.dim(1));
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "BatchedMatmul");
  const OpPrecision prec = ForwardGemmPrecision(ctx, /*int8_capable=*/false);
  ctx.RecordGemmDispatch(prec);
  Tensor out = ctx.AllocResult(Shape{a.dim(0), a.dim(1), b.dim(2)});
  if (prec == OpPrecision::kBf16) {
    const int64_t batch = a.dim(0), n = a.dim(1), k = a.dim(2), m = b.dim(2);
    for (int64_t s = 0; s < batch; ++s) {
      GemmPackedBf16(a.value().data() + s * n * k, false,
                     b.value().data() + s * k * m, false,
                     out.data() + s * n * m, n, k, m, /*accumulate=*/true);
    }
  } else {
    BatchedMatmulRawInto(a.value(), b.value(), false, false, &out);
  }
  prof.set_output(out);
  if (TraceRecorder* rec = ctx.trace_recorder()) {
    rec->RecordBatchedMatmul(a.value(), b.value(), out, prec);
  }
  return MakeOpResult<BatchedMatmulOp>(std::move(out), {a, b}, a.value(),
                                       b.value());
}

Variable PerSamplePointwiseConv(const Variable& x, const Variable& w) {
  ML_CHECK_EQ(x.rank(), 4);
  ML_CHECK_EQ(w.rank(), 3);
  const int64_t n = x.dim(0), q = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int64_t o = w.dim(1);
  ML_CHECK_EQ(w.dim(0), n);
  ML_CHECK_EQ(w.dim(2), q);
  RuntimeContext& ctx = RuntimeContext::Current();
  ProfileScope prof(ctx, "PerSamplePointwiseConv");
  const int64_t spatial = h * wd;

  // y[n] = w[n] [O,Q] · x[n] [Q, S]  (per-sample matmul over flattened space)
  const OpPrecision prec = ForwardGemmPrecision(ctx, /*int8_capable=*/false);
  ctx.RecordGemmDispatch(prec);
  Tensor out = ctx.AllocResult(Shape{n, o, h, wd});
  {
    const float* px = x.value().data();
    const float* pw = w.value().data();
    float* py = out.data();
    for (int64_t s = 0; s < n; ++s) {
      const float* xs = px + s * q * spatial;
      const float* ws = pw + s * o * q;
      float* ys = py + s * o * spatial;
      if (prec == OpPrecision::kBf16) {
        // The generated per-sample ΔW weights live in bf16 happily (LoTR's
        // low-intrinsic-rank argument); dynamic packing, weights change
        // per request.
        GemmPackedBf16(ws, false, xs, false, ys, o, q, spatial,
                       /*accumulate=*/true);
      } else {
        MatmulAccumulateRaw(ws, xs, ys, o, q, spatial);
      }
    }
  }
  prof.set_output(out);
  if (TraceRecorder* rec = ctx.trace_recorder()) {
    rec->RecordPerSamplePointwiseConv(x.value(), w.value(), out, prec);
  }
  return MakeOpResult<PerSamplePointwiseConvOp>(std::move(out), {x, w},
                                                x.value(), w.value());
}

}  // namespace autograd
}  // namespace metalora
