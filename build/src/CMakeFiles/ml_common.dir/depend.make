# Empty dependencies file for ml_common.
# This may be replaced when dependencies are built.
