// Autocast policy: per-op-category precision selection for the no-grad
// (serving / eval) paths.
//
// The policy is data, not machinery: a small struct carried on
// autograd::RuntimeContext and copied into child contexts by the parallel
// runners. Op facades that have a low-precision kernel (GEMM, conv) ask the
// context which precision to run at; every other op category — reductions,
// normalization, elementwise epilogues — never consults the policy at all,
// which is how those stay pinned to fp32 structurally rather than by
// convention.
//
// Two invariants the rest of the system relies on:
//  - Default-off. A default-constructed policy resolves everything to fp32,
//    and the fp32 kernels are byte-for-byte the ones that existed before
//    this layer — the bit-identity contract on the fp32 path is untouched.
//  - No-grad only. Facades resolve through
//    RuntimeContext::PrecisionFor(), which returns fp32 whenever
//    gradients are being recorded, so training is always full precision
//    regardless of what a caller set on the context.
#ifndef METALORA_TENSOR_AUTOCAST_H_
#define METALORA_TENSOR_AUTOCAST_H_

#include <string>

namespace metalora {

/// Numeric tier an eligible op runs at. Values index the per-precision
/// dispatch counters on RuntimeContext; keep them dense from 0.
enum class OpPrecision : int {
  kFp32 = 0,  // fp32 storage, fp32 accumulation (bit-identical engine)
  kBf16 = 1,  // bf16 storage (RNE on pack), fp32 accumulation
  kInt8 = 2,  // int8 storage (per-channel scales), int32 accumulation
};
inline constexpr int kNumOpPrecisions = 3;

/// Stable lowercase name ("fp32" / "bf16" / "int8") for logs and JSON.
const char* OpPrecisionName(OpPrecision precision);

/// Parses the names accepted by the bench `--precision=` flags. Returns
/// false (and leaves *out untouched) on anything else.
bool ParseOpPrecision(const std::string& text, OpPrecision* out);

/// Op categories that exist for precision resolution. Only kGemm and kConv
/// are eligible for low precision; the others are listed so call sites can
/// state their category explicitly and get the pinned-fp32 answer from the
/// same Resolve() path the eligible ops use.
enum class OpCategory : int {
  kGemm = 0,
  kConv = 1,
  kReduction = 2,
  kNormalization = 3,
};

struct AutocastPolicy {
  /// Master switch. When false, Resolve() is fp32 for every category no
  /// matter what the per-category fields say.
  bool enabled = false;
  /// Requested precision for matmul/linear/batched-matmul GEMMs.
  OpPrecision gemm = OpPrecision::kFp32;
  /// Requested precision for conv im2col GEMMs. Int8 requires
  /// quantize-at-publish per-channel scales, which only exist for rank-2
  /// weights, so conv caps at bf16 (Resolve() downgrades int8 -> bf16).
  OpPrecision conv = OpPrecision::kFp32;

  OpPrecision Resolve(OpCategory category) const {
    if (!enabled) return OpPrecision::kFp32;
    switch (category) {
      case OpCategory::kGemm:
        return gemm;
      case OpCategory::kConv:
        return conv == OpPrecision::kInt8 ? OpPrecision::kBf16 : conv;
      case OpCategory::kReduction:
      case OpCategory::kNormalization:
        return OpPrecision::kFp32;  // pinned: never eligible
    }
    return OpPrecision::kFp32;
  }

  /// Default-constructed == disabled; named for readability at call sites.
  static AutocastPolicy Disabled() { return AutocastPolicy{}; }

  /// The serving preset wired through AdapterServer worker contexts and the
  /// bench --precision flags: GEMMs at `precision`, convs at min(precision,
  /// bf16), everything else fp32. Serving(kFp32) is the disabled policy, so
  /// `--precision=fp32` exercises the identical code path as no flag.
  static AutocastPolicy Serving(OpPrecision precision) {
    AutocastPolicy policy;
    if (precision == OpPrecision::kFp32) return policy;
    policy.enabled = true;
    policy.gemm = precision;
    policy.conv = OpPrecision::kBf16;
    return policy;
  }
};

}  // namespace metalora

#endif  // METALORA_TENSOR_AUTOCAST_H_
