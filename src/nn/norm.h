// Normalization layers: BatchNorm2d (NCHW) and LayerNorm (last dim).
#ifndef METALORA_NN_NORM_H_
#define METALORA_NN_NORM_H_

#include "nn/module.h"

namespace metalora {
namespace nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  /// Uses batch statistics in training mode (updating running stats) and
  /// running statistics in eval mode.
  Variable Forward(const Variable& x) override;

  Variable& gamma() { return gamma_; }
  Variable& beta() { return beta_; }

 private:
  int64_t channels_;
  float momentum_;
  float eps_;
  Variable gamma_;
  Variable beta_;
  Tensor* running_mean_;
  Tensor* running_var_;
};

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  Variable Forward(const Variable& x) override;

 private:
  int64_t features_;
  float eps_;
  Variable gamma_;
  Variable beta_;
};

}  // namespace nn
}  // namespace metalora

#endif  // METALORA_NN_NORM_H_
