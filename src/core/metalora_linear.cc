#include "core/metalora_linear.h"

#include <cmath>

#include "autograd/ops.h"
#include "autograd/parallel.h"
#include "autograd/runtime_context.h"
#include "autograd/trace.h"
#include "autograd/variable.h"
#include "tensor/matmul.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"
#include "tn/tr_format.h"

namespace metalora {
namespace core {

// ---------------------------------------------------------------------------
// CP variant.
// ---------------------------------------------------------------------------

MetaLoraCpLinear::MetaLoraCpLinear(std::unique_ptr<nn::Linear> base,
                                   const AdapterOptions& options)
    : Adapter("MetaLoraCpLinear", options) {
  ML_CHECK(base != nullptr);
  ML_CHECK_GT(options.rank, 0);
  ML_CHECK_GT(options.feature_dim, 0)
      << "MetaLoRA needs options.feature_dim (the extractor embedding size)";
  const int64_t in = base->in_features();
  const int64_t out = base->out_features();
  scaling_ = options.alpha / static_cast<float>(options.rank);

  base_ = RegisterModule("base", std::move(base));
  base_->SetTrainable(false);

  Rng rng(options.seed);
  Tensor a{Shape{options.rank, in}};
  KaimingNormal(a, rng, in);
  lora_a_ = RegisterParameter("lora_a", std::move(a));
  // Zero-init B: the adapted model starts at the pre-trained point for every
  // value of the generated seed.
  lora_b_ = RegisterParameter("lora_b",
                              Tensor::Zeros(Shape{out, options.rank}));
  mapping_ = RegisterModule(
      "mapping", std::make_unique<MappingNet>(options.feature_dim,
                                              options.mapping_hidden,
                                              options.rank,
                                              SeedShape::kVector, rng));
}

namespace {

// Aligns a per-sample seed with the rows of `x`. Layers applied token-wise
// (MLP-Mixer) see x flattened to [N*S, D] with sample-major row order, so
// the seed is repeated S times per sample; a mismatch that is not an exact
// multiple is a caller bug.
Variable AlignSeedToRows(const Variable& seed, int64_t x_rows) {
  const int64_t n = seed.dim(0);
  ML_CHECK(x_rows % n == 0 && x_rows >= n)
      << "conditioning features batch size mismatch: x has " << x_rows
      << " rows, features have " << n;
  return autograd::RepeatRowsInterleaved(seed, x_rows / n);
}

}  // namespace

Variable MetaLoraCpLinear::Forward(const Variable& x) {
  // Snapshot the calling replica's binding before spawning branches: the
  // local keeps the branch bodies independent of which thread runs them.
  const Variable features = bound_features();
  ML_CHECK(features.defined())
      << "MetaLoraCpLinear: SetFeatures must be called before Forward";
  // Branch 1 is the frozen base matmul; branch 2 generates the seed with
  // the mapping net and applies the CP-factored update (Eq. 6). The two
  // subgraphs only share leaves (x, parameters, features).
  autograd::ParallelScope ps;
  ps.Spawn([&] { return base_->Forward(x); });
  ps.Spawn([&] {
    Variable seed = cache_.SeedOrCompute(
        cache_salt_, features,
        [&] { return mapping_->Forward(features); });       // [N, R]
    Variable c = AlignSeedToRows(seed, x.dim(0));
    Variable h = autograd::Linear(x, lora_a_, Variable());  // [N, R]
    h = autograd::Mul(h, c);                                // per-sample Eq. 6
    return autograd::Linear(h, lora_b_, Variable());        // [N, O]
  });
  std::vector<Variable> r = ps.Join();
  return autograd::Add(r[0], autograd::Scale(r[1], scaling_));
}

int64_t MetaLoraCpLinear::AdapterParamCount() const {
  return lora_a_.numel() + lora_b_.numel() +
         mapping_->ParamCount();
}

Tensor MetaLoraCpLinear::DeltaWeightFor(const Tensor& seed_c) const {
  ML_CHECK_EQ(seed_c.rank(), 1);
  ML_CHECK_EQ(seed_c.dim(0), options_.rank);
  // ΔW[o,i] = scaling · Σ_r B[o,r] c[r] A[r,i].
  Tensor b_scaled = lora_b_.value().Clone();
  const int64_t out = b_scaled.dim(0), r = b_scaled.dim(1);
  for (int64_t o = 0; o < out; ++o) {
    for (int64_t k = 0; k < r; ++k) {
      b_scaled.flat(o * r + k) *= seed_c.flat(k);
    }
  }
  Tensor delta = Matmul(b_scaled, lora_a_.value());
  ScaleInPlace(delta, scaling_);
  return delta;
}

// ---------------------------------------------------------------------------
// TR variant.
// ---------------------------------------------------------------------------

MetaLoraTrLinear::MetaLoraTrLinear(std::unique_ptr<nn::Linear> base,
                                   const AdapterOptions& options)
    : Adapter("MetaLoraTrLinear", options) {
  ML_CHECK(base != nullptr);
  ML_CHECK_GT(options.rank, 0);
  ML_CHECK_GT(options.feature_dim, 0)
      << "MetaLoRA needs options.feature_dim (the extractor embedding size)";
  const int64_t in = base->in_features();
  const int64_t out = base->out_features();
  scaling_ = options.alpha / static_cast<float>(options.rank);

  base_ = RegisterModule("base", std::move(base));
  base_->SetTrainable(false);

  Rng rng(options.seed);
  Tensor a{Shape{options.rank, in, options.rank}};
  // Scale so that u = x ·_i A has O(1) entries per bond pair.
  FillNormal(a, rng, 0.0f, 1.0f / std::sqrt(static_cast<float>(in)));
  core_a_ = RegisterParameter("core_a", std::move(a));
  core_b_ = RegisterParameter(
      "core_b", Tensor::Zeros(Shape{options.rank, out, options.rank}));
  mapping_ = RegisterModule(
      "mapping", std::make_unique<MappingNet>(options.feature_dim,
                                              options.mapping_hidden,
                                              options.rank,
                                              SeedShape::kMatrix, rng));
}

Variable MetaLoraTrLinear::Forward(const Variable& x) {
  const Variable features = bound_features();
  ML_CHECK(features.defined())
      << "MetaLoraTrLinear: SetFeatures must be called before Forward";
  const int64_t n = x.dim(0);
  const int64_t in = base_->in_features();
  const int64_t out = base_->out_features();
  const int64_t r = options_.rank;

  // Branch 1: frozen base matmul. Branch 2: mapping-net seed generation
  // plus the TR contraction chain (Eq. 7). Only leaves are shared.
  //
  // The chain is ordered so everything that depends only on (features,
  // factors) — and not on x — contracts into per-feature recovery weights
  // M[n, (r0,r1), o] = Σ_{r2} C[n,r2,r0]·B[r1,o,r2] first. M is what the
  // conditioning cache stores: a warm no-grad forward skips the mapping net
  // and the B-side contraction entirely.
  autograd::ParallelScope ps;
  ps.Spawn([&] { return base_->Forward(x); });
  ps.Spawn([&] {
    // Recovery weights from a generated core batch [N_f, R(r2), R(r0)].
    auto contract_recovery = [&](const Variable& core_c) {
      const int64_t nf = core_c.dim(0);
      Variable c_t = autograd::Permute(core_c, {0, 2, 1});  // [N_f, r0, r2]
      Variable c_flat = autograd::Reshape(c_t, Shape{nf * r, r});
      Variable b_mat = autograd::Reshape(
          autograd::Permute(core_b_, {2, 0, 1}), Shape{r, r * out});
      // Row q = r0*R + r1 matches the bond order of U below.
      return autograd::Reshape(autograd::Matmul(c_flat, b_mat),
                               Shape{nf, r * r, out});
    };

    Variable m;  // [N_f, R*R, O]
    if (!autograd::GradEnabled()) {
      const uint64_t key = ConditioningChecksum(features.value(), cache_salt_);
      autograd::TraceRecorder* rec =
          autograd::RuntimeContext::Current().trace_recorder();
      ConditioningEntry e;
      if (cache_.Lookup(key, features.value(), &e)) {
        if (rec != nullptr) {
          rec->NoteCacheFetch(&cache_, cache_salt_, features.value(), e.delta,
                              /*from_delta=*/true);
        }
        m = Variable(e.delta, /*requires_grad=*/false);
      } else {
        if (rec != nullptr) {
          // This forward warms the cache; the retry traces the fetch path.
          rec->AbortRetryable("conditioning cache miss (cold recovery path)");
        }
        // Version captured before the mapping net runs: an optimizer step
        // landing mid-compute makes this insert a no-op (TOCTOU guard).
        const uint64_t ver = autograd::GlobalParameterVersion();
        Variable core_c = mapping_->Forward(features);
        m = contract_recovery(core_c);
        cache_.Insert(key, features.value(), core_c.value(), m.value(), ver);
      }
    } else {
      m = contract_recovery(mapping_->Forward(features));
    }

    // U[n, r0, r1] = Σ_i x[n,i] A[r0, i, r1], flattened to q = r0*R + r1.
    Variable a_mat = autograd::Reshape(
        autograd::Permute(core_a_, {1, 0, 2}), Shape{in, r * r});
    Variable u = autograd::Reshape(autograd::Matmul(x, a_mat),
                                   Shape{n, 1, r * r});

    // d[n, o] = Σ_q U[n, q] M[n, q, o].
    Variable d = autograd::BatchedMatmul(u, AlignSeedToRows(m, n));
    return autograd::Reshape(d, Shape{n, out});
  });
  std::vector<Variable> branch = ps.Join();
  return autograd::Add(branch[0], autograd::Scale(branch[1], scaling_));
}

int64_t MetaLoraTrLinear::AdapterParamCount() const {
  return core_a_.numel() + core_b_.numel() + mapping_->ParamCount();
}

Tensor MetaLoraTrLinear::DeltaWeightFor(const Tensor& seed_core) const {
  ML_CHECK_EQ(seed_core.rank(), 2);
  ML_CHECK_EQ(seed_core.dim(0), options_.rank);
  ML_CHECK_EQ(seed_core.dim(1), options_.rank);
  auto delta_io =
      tn::TrMatrix(core_a_.value(), core_b_.value(), seed_core);  // [I, O]
  ML_CHECK(delta_io.ok()) << delta_io.status().ToString();
  Tensor delta = Transpose2D(delta_io.value());  // layer layout [O, I]
  ScaleInPlace(delta, scaling_);
  return delta;
}

}  // namespace core
}  // namespace metalora
