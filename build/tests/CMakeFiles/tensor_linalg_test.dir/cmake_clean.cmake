file(REMOVE_RECURSE
  "CMakeFiles/tensor_linalg_test.dir/tensor_linalg_test.cc.o"
  "CMakeFiles/tensor_linalg_test.dir/tensor_linalg_test.cc.o.d"
  "tensor_linalg_test"
  "tensor_linalg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
