#include "data/synthetic_recsys.h"

#include <cmath>

#include "common/check.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"

namespace metalora {
namespace data {

Tensor RecsysDataset::PerSampleEmbeddings() const {
  std::vector<int64_t> rows(user_ids.begin(), user_ids.end());
  return GatherRows(user_embeddings, rows);
}

RecsysWorld::RecsysWorld(const RecsysSpec& spec, uint64_t seed) : spec_(spec) {
  ML_CHECK_GE(spec.num_users, 1);
  ML_CHECK_GE(spec.item_dim, 2);
  ML_CHECK_GE(spec.embedding_dim, 1);
  Rng rng(seed ^ 0x9E377ull);
  shared_w_ = RandomNormal(Shape{spec.item_dim}, rng);
  private_w_ = RandomNormal(Shape{spec.num_users, spec.item_dim}, rng, 0.0f,
                            spec.private_strength);

  // The observed user embedding is a fixed random projection of the private
  // preference plus estimation noise — informative but not the raw truth.
  Tensor projection =
      RandomNormal(Shape{spec.item_dim, spec.embedding_dim}, rng, 0.0f,
                   1.0f / std::sqrt(static_cast<float>(spec.item_dim)));
  embeddings_ = Tensor{Shape{spec.num_users, spec.embedding_dim}};
  for (int64_t u = 0; u < spec.num_users; ++u) {
    for (int64_t e = 0; e < spec.embedding_dim; ++e) {
      double acc = 0;
      for (int64_t d = 0; d < spec.item_dim; ++d) {
        acc += static_cast<double>(private_w_.flat(u * spec.item_dim + d)) *
               projection.flat(d * spec.embedding_dim + e);
      }
      embeddings_.flat(u * spec.embedding_dim + e) =
          static_cast<float>(acc + rng.Normal(0.0, spec.embedding_noise));
    }
  }
}

RecsysDataset RecsysWorld::Sample(int64_t per_user, uint64_t seed) const {
  ML_CHECK_GT(per_user, 0);
  Rng rng(seed);
  const int64_t n = per_user * spec_.num_users;
  RecsysDataset ds;
  ds.items = Tensor{Shape{n, spec_.item_dim}};
  ds.labels.resize(static_cast<size_t>(n));
  ds.user_ids.resize(static_cast<size_t>(n));
  ds.user_embeddings = embeddings_.Clone();

  int64_t row = 0;
  for (int64_t u = 0; u < spec_.num_users; ++u) {
    for (int64_t i = 0; i < per_user; ++i, ++row) {
      double score = 0;
      for (int64_t d = 0; d < spec_.item_dim; ++d) {
        const float x = static_cast<float>(rng.Normal(0.0, 1.0));
        ds.items.flat(row * spec_.item_dim + d) = x;
        score += static_cast<double>(
                     shared_w_.flat(d) +
                     private_w_.flat(u * spec_.item_dim + d)) *
                 x;
      }
      ds.labels[static_cast<size_t>(row)] = score > 0 ? 1 : 0;
      ds.user_ids[static_cast<size_t>(row)] = u;
    }
  }
  return ds;
}

}  // namespace data
}  // namespace metalora
