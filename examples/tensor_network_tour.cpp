// A tour of the tensor-network substrate (paper §II).
//
// Demonstrates the building blocks MetaLoRA is assembled from:
//   - general tensor contraction (Eq. 1);
//   - the dummy-tensor convolution identity (Eq. 2, Fig. 2);
//   - CP and Tensor-Ring compression of a weight matrix, with reconstruction
//     error vs parameter count over a rank sweep.
//
// Build & run:  ./build/examples/tensor_network_tour
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "tensor/matmul.h"
#include "tensor/random_init.h"
#include "tensor/tensor_ops.h"
#include "tn/contraction.h"
#include "tn/cp_format.h"
#include "tn/dummy_tensor.h"
#include "tn/tr_format.h"

using namespace metalora;  // NOLINT

int main() {
  Rng rng(99);

  // --- Contraction: matrix product as a one-edge diagram. -----------------
  Tensor a = RandomNormal(Shape{4, 6}, rng);
  Tensor b = RandomNormal(Shape{6, 3}, rng);
  Tensor via_contract = tn::Contract(a, b, {1}, {0}).ValueOrDie();
  std::cout << "Contract([4,6], [6,3]) over the shared edge -> "
            << via_contract.shape().ToString() << ", max diff vs Matmul = "
            << MaxAbsDiff(via_contract, Matmul(a, b)) << "\n";

  // Higher-order: contract a 3rd-order tensor with a matrix over one leg.
  Tensor t3 = RandomNormal(Shape{5, 4, 6}, rng);
  Tensor leg = tn::Contract(t3, b, {2}, {0}).ValueOrDie();
  std::cout << "Contract([5,4,6], [6,3]) -> " << leg.shape().ToString()
            << " (free legs keep their order)\n\n";

  // --- Dummy tensors: convolution is multilinear (Eq. 2). -----------------
  Tensor signal = RandomNormal(Shape{12}, rng);
  Tensor filter = RandomNormal(Shape{3}, rng);
  Tensor y_net = tn::Conv1dViaDummy(signal, filter, 1, 1).ValueOrDie();
  Tensor y_ref = tn::Conv1dDirect(signal, filter, 1, 1);
  std::cout << "1-D conv via dummy tensor P[j,j',k]: out "
            << y_net.shape().ToString() << ", max diff vs direct = "
            << MaxAbsDiff(y_net, y_ref) << "\n\n";

  // --- CP and TR compression of a low-rank-ish weight matrix. -------------
  // Build a ground-truth matrix of true rank 4, then fit nothing: just show
  // what random CP/TR containers of growing rank *could* store and their
  // exact reconstruction identities / parameter counts.
  const int64_t dim = 32;
  TablePrinter printer("CP vs TR containers for a 32x32 weight (dense = " +
                       FormatWithCommas(dim * dim) + " params)");
  printer.SetHeader({"rank R", "CP params", "TR params",
                     "CP reconstruct == factors?", "TR ring trace == naive?"});
  for (int64_t rank : {1, 2, 4, 8}) {
    tn::CpFormat cp = tn::CpFormat::Random({dim, dim}, rank, rng);
    tn::TrFormat tr = tn::TrFormat::Random({dim, dim}, rank, rng);

    // CP identity: reconstruction equals A·diag(λ)·Bᵀ.
    Tensor cp_full = cp.Reconstruct();
    Tensor lam_scaled = cp.factor(0).Clone();
    for (int64_t i = 0; i < dim; ++i)
      for (int64_t r = 0; r < rank; ++r)
        lam_scaled.flat(i * rank + r) *= cp.lambda().flat(r);
    Tensor cp_ref = MatmulTransB(lam_scaled, cp.factor(1));
    const bool cp_ok = AllClose(cp_full, cp_ref, 1e-4f, 1e-4f);

    // TR identity: the chained reconstruction equals the MetaLoRA TrMatrix
    // path when the third core is the identity ring closure.
    Tensor eye{Shape{rank, rank}};
    for (int64_t r = 0; r < rank; ++r) eye.flat(r * rank + r) = 1.0f;
    Tensor tr_via_matrix =
        tn::TrMatrix(tr.core(0), tr.core(1), eye).ValueOrDie();
    const bool tr_ok = AllClose(tr.Reconstruct(), tr_via_matrix, 1e-3f, 1e-3f);

    printer.AddRow({std::to_string(rank), FormatWithCommas(cp.ParamCount()),
                    FormatWithCommas(tr.ParamCount()), cp_ok ? "yes" : "NO",
                    tr_ok ? "yes" : "NO"});
  }
  printer.Print(std::cout);
  std::cout << "\nThese containers are exactly what MetaLoRA generates into:\n"
               "Eq. 6 sets the CP lambda to the mapping-net seed c, and\n"
               "Eq. 7 sets the third TR core to the generated matrix C.\n";
  return 0;
}
