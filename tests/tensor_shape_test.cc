#include <gtest/gtest.h>

#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace metalora {
namespace {

TEST(ShapeTest, RankAndNumel) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(Shape{}.rank(), 0);
  EXPECT_EQ(Shape{}.numel(), 1);  // scalar
}

TEST(ShapeTest, NegativeIndexing) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
  EXPECT_EQ(s[1], 3);
}

TEST(ShapeTest, OutOfRangeDies) {
  Shape s{2, 3};
  EXPECT_DEATH(s.dim(2), "out of range");
  EXPECT_DEATH(s.dim(-3), "out of range");
}

TEST(ShapeTest, Strides) {
  Shape s{2, 3, 4};
  auto strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).ToString(), "[2, 3]");
  EXPECT_EQ(Shape{}.ToString(), "[]");
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t{Shape{3, 3}};
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.flat(i), 0.0f);
}

TEST(TensorTest, Factories) {
  EXPECT_EQ(Tensor::Ones(Shape{4}).flat(3), 1.0f);
  EXPECT_EQ(Tensor::Full(Shape{2}, 2.5f).flat(1), 2.5f);
  EXPECT_EQ(Tensor::Scalar(7.0f).numel(), 1);
  EXPECT_EQ(Tensor::Scalar(7.0f).rank(), 0);
  Tensor v = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(v.at({1, 0}), 3.0f);
}

TEST(TensorTest, FromVectorSizeMismatchDies) {
  EXPECT_DEATH(Tensor::FromVector(Shape{2, 2}, {1, 2, 3}), "");
}

TEST(TensorTest, MultiIndexAccess) {
  Tensor t = Tensor::FromVector(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
  t.at({1, 2}) = 10.0f;
  EXPECT_EQ(t.flat(5), 10.0f);
  EXPECT_DEATH(t.at({2, 0}), "out of range");
  EXPECT_DEATH(t.at({0}), "");  // wrong arity
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::Ones(Shape{4});
  Tensor b = a;  // shares buffer
  EXPECT_TRUE(a.SharesBufferWith(b));
  b.flat(0) = 5.0f;
  EXPECT_EQ(a.flat(0), 5.0f);

  Tensor c = a.Clone();
  EXPECT_FALSE(a.SharesBufferWith(c));
  c.flat(1) = 9.0f;
  EXPECT_EQ(a.flat(1), 1.0f);
}

TEST(TensorTest, ReshapeSharesBuffer) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = a.Reshape(Shape{3, 2});
  EXPECT_TRUE(a.SharesBufferWith(r));
  EXPECT_EQ(r.at({2, 1}), 6.0f);
  EXPECT_DEATH(a.Reshape(Shape{4, 2}), "reshape");
}

TEST(TensorTest, FillAndCopyDataFrom) {
  Tensor a{Shape{2, 2}};
  a.Fill(3.0f);
  EXPECT_EQ(a.flat(3), 3.0f);
  Tensor b{Shape{4}};
  b.CopyDataFrom(a);  // numel match suffices
  EXPECT_EQ(b.flat(0), 3.0f);
}

TEST(TensorTest, UndefinedTensor) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.ToString(), "Tensor(undefined)");
}

TEST(TensorTest, ToStringAbbreviatesLarge) {
  Tensor big = Tensor::Ones(Shape{100});
  EXPECT_NE(big.ToString().find("..."), std::string::npos);
  Tensor small = Tensor::Ones(Shape{2});
  EXPECT_EQ(small.ToString().find("..."), std::string::npos);
}

TEST(TensorTest, ToVectorRoundTrip) {
  std::vector<float> vals = {1, 2, 3, 4};
  Tensor t = Tensor::FromVector(Shape{4}, vals);
  EXPECT_EQ(t.ToVector(), vals);
}

}  // namespace
}  // namespace metalora
